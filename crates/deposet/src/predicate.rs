//! Local and global predicates.
//!
//! Following the paper (Section 3): a *local predicate* for process `P_i` is
//! a boolean function of `P_i`'s variables; a *global predicate* `B` is a
//! boolean combination (`¬ ∨ ∧`) of local predicates. `B` is *disjunctive*
//! when it can be written `l₁ ∨ l₂ ∨ … ∨ lₙ` with `lᵢ` local to `Pᵢ`.
//!
//! Predicates are plain data (serde-able), so a debugging session's safety
//! properties can be stored alongside the trace and replayed later.

use crate::model::Deposet;
use crate::state::LocalState;
use pctl_causality::ProcessId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A boolean function of a single process's variables.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalPredicate {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Boolean variable is true (nonzero). Unset variables read as false.
    Var(String),
    /// Comparison of a variable against a constant. Unset variables read as 0.
    Cmp {
        /// Variable name.
        var: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand constant.
        value: i64,
    },
    /// Negation.
    Not(Box<LocalPredicate>),
    /// Conjunction (empty = true).
    And(Vec<LocalPredicate>),
    /// Disjunction (empty = false).
    Or(Vec<LocalPredicate>),
}

/// Comparison operators for [`LocalPredicate::Cmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl LocalPredicate {
    /// Shorthand: boolean variable is true.
    pub fn var(name: impl Into<String>) -> Self {
        LocalPredicate::Var(name.into())
    }

    /// Shorthand: boolean variable is false.
    pub fn not_var(name: impl Into<String>) -> Self {
        LocalPredicate::Not(Box::new(LocalPredicate::Var(name.into())))
    }

    /// Shorthand: `var op value`.
    pub fn cmp(var: impl Into<String>, op: CmpOp, value: i64) -> Self {
        LocalPredicate::Cmp {
            var: var.into(),
            op,
            value,
        }
    }

    /// Evaluate against a local state.
    pub fn eval(&self, state: &LocalState) -> bool {
        match self {
            LocalPredicate::True => true,
            LocalPredicate::False => false,
            LocalPredicate::Var(name) => state.vars.get_bool(name),
            LocalPredicate::Cmp { var, op, value } => {
                op.apply(state.vars.get(var).unwrap_or(0), *value)
            }
            LocalPredicate::Not(p) => !p.eval(state),
            LocalPredicate::And(ps) => ps.iter().all(|p| p.eval(state)),
            LocalPredicate::Or(ps) => ps.iter().any(|p| p.eval(state)),
        }
    }

    /// Negate, flattening double negations.
    pub fn negated(self) -> Self {
        match self {
            LocalPredicate::True => LocalPredicate::False,
            LocalPredicate::False => LocalPredicate::True,
            LocalPredicate::Not(inner) => *inner,
            other => LocalPredicate::Not(Box::new(other)),
        }
    }
}

impl fmt::Display for LocalPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocalPredicate::True => write!(f, "true"),
            LocalPredicate::False => write!(f, "false"),
            LocalPredicate::Var(v) => write!(f, "{v}"),
            LocalPredicate::Cmp { var, op, value } => {
                let op = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "{var} {op} {value}")
            }
            LocalPredicate::Not(p) => write!(f, "¬({p})"),
            LocalPredicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            LocalPredicate::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A global predicate: boolean combination of process-bound local
/// predicates, evaluated on global states.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GlobalPredicate {
    /// Constant.
    Const(bool),
    /// `pred` evaluated on the local state of `process` within the global
    /// state.
    Local {
        /// Which process's state the predicate reads.
        process: ProcessId,
        /// The local predicate.
        pred: LocalPredicate,
    },
    /// Negation.
    Not(Box<GlobalPredicate>),
    /// Conjunction (empty = true).
    And(Vec<GlobalPredicate>),
    /// Disjunction (empty = false).
    Or(Vec<GlobalPredicate>),
}

impl GlobalPredicate {
    /// Bind a local predicate to a process.
    pub fn local(process: impl Into<ProcessId>, pred: LocalPredicate) -> Self {
        GlobalPredicate::Local {
            process: process.into(),
            pred,
        }
    }

    /// Evaluate on the global state `g` (a vector of per-process state
    /// indices) of `dep`.
    ///
    /// # Panics
    /// Panics if `g` has the wrong arity or refers to out-of-range states.
    pub fn eval(&self, dep: &Deposet, g: &crate::global::GlobalState) -> bool {
        match self {
            GlobalPredicate::Const(b) => *b,
            GlobalPredicate::Local { process, pred } => pred.eval(dep.state(g.state_of(*process))),
            GlobalPredicate::Not(p) => !p.eval(dep, g),
            GlobalPredicate::And(ps) => ps.iter().all(|p| p.eval(dep, g)),
            GlobalPredicate::Or(ps) => ps.iter().any(|p| p.eval(dep, g)),
        }
    }
}

/// A disjunctive predicate `B = l₁ ∨ … ∨ lₙ`, one local predicate per
/// process. This is the class for which the paper gives efficient control
/// algorithms (Sections 5 and 6).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisjunctivePredicate {
    locals: Vec<LocalPredicate>,
}

impl DisjunctivePredicate {
    /// Build from one local predicate per process (index = process id).
    pub fn new(locals: Vec<LocalPredicate>) -> Self {
        DisjunctivePredicate { locals }
    }

    /// Two-process mutual exclusion `¬cs₀ ∨ ¬cs₁` generalised to n
    /// processes: *at least one process outside its critical section*
    /// ((n−1)-mutual exclusion; the paper's examples (1) and (4)).
    pub fn at_least_one_not(n: usize, var: &str) -> Self {
        DisjunctivePredicate {
            locals: (0..n).map(|_| LocalPredicate::not_var(var)).collect(),
        }
    }

    /// *At least one process has `var` true* (the paper's example (2):
    /// at least one server is available).
    pub fn at_least_one(n: usize, var: &str) -> Self {
        DisjunctivePredicate {
            locals: (0..n).map(|_| LocalPredicate::var(var)).collect(),
        }
    }

    /// Number of processes the predicate covers.
    pub fn arity(&self) -> usize {
        self.locals.len()
    }

    /// The local predicate of process `p`.
    pub fn local(&self, p: ProcessId) -> &LocalPredicate {
        &self.locals[p.index()]
    }

    /// All local predicates, indexed by process.
    pub fn locals(&self) -> &[LocalPredicate] {
        &self.locals
    }

    /// Evaluate on a global state: true iff some local disjunct holds.
    pub fn eval(&self, dep: &Deposet, g: &crate::global::GlobalState) -> bool {
        (0..self.locals.len()).any(|i| {
            let p = ProcessId(i as u32);
            self.locals[i].eval(dep.state(g.state_of(p)))
        })
    }

    /// Lower into the general [`GlobalPredicate`] form.
    pub fn to_global(&self) -> GlobalPredicate {
        GlobalPredicate::Or(
            self.locals
                .iter()
                .enumerate()
                .map(|(i, l)| GlobalPredicate::local(i, l.clone()))
                .collect(),
        )
    }
}

/// A *regular* predicate (Mittal–Garg): the consistent cuts satisfying it
/// are closed under both meet (componentwise min) and join (componentwise
/// max), so they form a sublattice of the cut lattice and admit a
/// *computation slice* ([`crate::slice::SlicedDeposet`]).
///
/// The grammar deliberately excludes disjunction — `l₁ ∨ l₂` is not regular
/// in general — and contains exactly the closed constructors:
///
/// * [`Local`](RegularPredicate::Local) — a local predicate on one process's
///   frontier state (the min/max of two frontier indices is one of them);
/// * [`ChannelsEmpty`](RegularPredicate::ChannelsEmpty) — no message in
///   flight (closed because meet/join can only move a frontier onto one of
///   the two argument frontiers, both of which have the channel condition);
/// * [`And`](RegularPredicate::And) — intersection of sublattices.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegularPredicate {
    /// `pred` holds on the frontier state of `process`.
    Local {
        /// Which process's frontier state the predicate reads.
        process: ProcessId,
        /// The local predicate.
        pred: LocalPredicate,
    },
    /// Every message sent inside the cut is also received inside it.
    ChannelsEmpty,
    /// Conjunction (empty = true).
    And(Vec<RegularPredicate>),
}

impl RegularPredicate {
    /// Shorthand: bind a local predicate to a process.
    pub fn local(process: impl Into<ProcessId>, pred: LocalPredicate) -> Self {
        RegularPredicate::Local {
            process: process.into(),
            pred,
        }
    }

    /// Conjunction of `var` being true on every listed process.
    pub fn conj_var(processes: &[u32], var: &str) -> Self {
        RegularPredicate::And(
            processes
                .iter()
                .map(|&p| RegularPredicate::local(ProcessId(p), LocalPredicate::var(var)))
                .collect(),
        )
    }

    /// Evaluate on the global state `g` of `dep`.
    ///
    /// # Panics
    /// Panics if `g` has the wrong arity or refers to out-of-range states.
    pub fn eval(&self, dep: &Deposet, g: &crate::global::GlobalState) -> bool {
        match self {
            RegularPredicate::Local { process, pred } => pred.eval(dep.state(g.state_of(*process))),
            RegularPredicate::ChannelsEmpty => dep.messages().iter().all(|m| {
                let sent = g.index_of(m.from.process) > m.from.idx() as u32;
                let received = g.index_of(m.to.process) >= m.to.idx() as u32;
                !sent || received
            }),
            RegularPredicate::And(ps) => ps.iter().all(|p| p.eval(dep, g)),
        }
    }

    /// Flatten the `And` tree into one conjunction of local predicates per
    /// process (empty conjunction = true for that process).
    ///
    /// # Panics
    /// Panics if a `Local` names a process `≥ n` (call
    /// [`PredicateClass::validate`] first).
    pub fn conjuncts_by_process(&self, n: usize) -> Vec<Vec<LocalPredicate>> {
        let mut out = vec![Vec::new(); n];
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts(&self, out: &mut [Vec<LocalPredicate>]) {
        match self {
            RegularPredicate::Local { process, pred } => {
                out[process.index()].push(pred.clone());
            }
            RegularPredicate::ChannelsEmpty => {}
            RegularPredicate::And(ps) => {
                for p in ps {
                    p.collect_conjuncts(out);
                }
            }
        }
    }

    /// Does the predicate constrain channel contents anywhere in its tree?
    pub fn uses_channels(&self) -> bool {
        match self {
            RegularPredicate::Local { .. } => false,
            RegularPredicate::ChannelsEmpty => true,
            RegularPredicate::And(ps) => ps.iter().any(RegularPredicate::uses_channels),
        }
    }

    fn max_process(&self) -> Option<u32> {
        match self {
            RegularPredicate::Local { process, .. } => Some(process.0),
            RegularPredicate::ChannelsEmpty => None,
            RegularPredicate::And(ps) => ps.iter().filter_map(RegularPredicate::max_process).max(),
        }
    }
}

impl fmt::Display for RegularPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegularPredicate::Local { process, pred } => write!(f, "P{}:{pred}", process.0),
            RegularPredicate::ChannelsEmpty => write!(f, "channels-empty"),
            RegularPredicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The unified predicate abstraction carried from trace to daemon: which
/// *class* a safety property belongs to decides which engine path runs.
///
/// Both variants describe a **violation** to detect or prevent:
///
/// * [`Disjunctive`](PredicateClass::Disjunctive) keeps the paper's framing —
///   the good predicate `B = l₁ ∨ … ∨ lₙ` is maintained, the violation is
///   `∧ᵢ ¬lᵢ`; the engine runs the existing interval machinery untouched.
/// * [`Regular`](PredicateClass::Regular) names the violation directly as a
///   [`RegularPredicate`]; the engine slices first and delegates the control
///   step to the same interval algorithms over the refined intervals.
///
/// The serde form is the wire form (`pctld` `Hello` carries an optional
/// `PredicateClass`), so variants and field names are stability-sensitive.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredicateClass {
    /// Maintain a disjunctive predicate (one local disjunct per process).
    Disjunctive(DisjunctivePredicate),
    /// Prevent/detect a regular violation over `processes` processes.
    Regular {
        /// Number of processes the computation has (fixes cut arity).
        processes: u32,
        /// The violation predicate.
        violation: RegularPredicate,
    },
}

/// Why a [`PredicateClass`] cannot be applied to a given computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClassError {
    /// A `Local` conjunct names a process the computation does not have.
    ProcessOutOfRange {
        /// The offending process id.
        process: u32,
        /// The computation's process count.
        count: u32,
    },
    /// The class was declared for a different number of processes.
    ArityMismatch {
        /// Process count of the computation.
        expected: u32,
        /// Process count the class was built for.
        got: u32,
    },
}

impl fmt::Display for ClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassError::ProcessOutOfRange { process, count } => {
                write!(
                    f,
                    "predicate names process {process} but the computation has {count}"
                )
            }
            ClassError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "predicate class built for {got} processes, computation has {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ClassError {}

impl PredicateClass {
    /// Wrap a disjunctive predicate.
    pub fn disjunctive(pred: DisjunctivePredicate) -> Self {
        PredicateClass::Disjunctive(pred)
    }

    /// A regular violation over `processes` processes.
    pub fn regular(processes: u32, violation: RegularPredicate) -> Self {
        PredicateClass::Regular {
            processes,
            violation,
        }
    }

    /// Number of processes the class is declared for.
    pub fn arity(&self) -> usize {
        match self {
            PredicateClass::Disjunctive(p) => p.arity(),
            PredicateClass::Regular { processes, .. } => *processes as usize,
        }
    }

    /// Check the class fits a computation with `n` processes.
    pub fn validate(&self, n: usize) -> Result<(), ClassError> {
        let n32 = n as u32;
        if self.arity() != n {
            return Err(ClassError::ArityMismatch {
                expected: n32,
                got: self.arity() as u32,
            });
        }
        if let PredicateClass::Regular { violation, .. } = self {
            if let Some(p) = violation.max_process() {
                if p >= n32 {
                    return Err(ClassError::ProcessOutOfRange {
                        process: p,
                        count: n32,
                    });
                }
            }
        }
        Ok(())
    }

    /// Per-process local predicates for a [`crate::session::SessionStore`]'s
    /// incremental truth columns.
    ///
    /// For the disjunctive class these are the disjuncts themselves (truth =
    /// "local disjunct holds", exactly today's meaning). For a regular class,
    /// process `i` gets `¬(∧ conjunctsᵢ)`, so the stored truth bit is *false*
    /// exactly when the violation's conjunction on `i` holds — the slicer
    /// reads conjunct truth as `!truth` without re-evaluating states.
    pub fn session_locals(&self) -> Vec<LocalPredicate> {
        match self {
            PredicateClass::Disjunctive(p) => p.locals().to_vec(),
            PredicateClass::Regular {
                processes,
                violation,
            } => violation
                .conjuncts_by_process(*processes as usize)
                .into_iter()
                .map(|conj| LocalPredicate::And(conj).negated())
                .collect(),
        }
    }

    /// The violation, lowered to a general [`GlobalPredicate`] (used by the
    /// verifier and the lattice oracle). For the disjunctive class this is
    /// `¬(l₁ ∨ … ∨ lₙ)`.
    pub fn violation_global(&self) -> GlobalPredicate {
        match self {
            PredicateClass::Disjunctive(p) => GlobalPredicate::Not(Box::new(p.to_global())),
            PredicateClass::Regular { violation, .. } => violation.to_global(),
        }
    }
}

impl fmt::Display for PredicateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredicateClass::Disjunctive(p) => {
                write!(f, "disjunctive[")?;
                for (i, l) in p.locals().iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, "]")
            }
            PredicateClass::Regular { violation, .. } => write!(f, "regular[{violation}]"),
        }
    }
}

impl RegularPredicate {
    /// Lower into the general [`GlobalPredicate`] form. `ChannelsEmpty` has
    /// no `GlobalPredicate` counterpart and is kept out of the lowering —
    /// use [`RegularPredicate::eval`] when channel terms matter.
    ///
    /// # Panics
    /// Panics if the predicate uses [`RegularPredicate::ChannelsEmpty`].
    pub fn to_global(&self) -> GlobalPredicate {
        match self {
            RegularPredicate::Local { process, pred } => {
                GlobalPredicate::local(*process, pred.clone())
            }
            RegularPredicate::ChannelsEmpty => {
                panic!("ChannelsEmpty has no GlobalPredicate lowering")
            }
            RegularPredicate::And(ps) => {
                GlobalPredicate::And(ps.iter().map(RegularPredicate::to_global).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Variables;

    fn st(pairs: &[(&str, i64)]) -> LocalState {
        LocalState::new(Variables::from_pairs(pairs.iter().copied()))
    }

    #[test]
    fn var_predicates() {
        let p = LocalPredicate::var("cs");
        assert!(p.eval(&st(&[("cs", 1)])));
        assert!(!p.eval(&st(&[("cs", 0)])));
        assert!(!p.eval(&st(&[])), "unset variable reads false");
        assert!(LocalPredicate::not_var("cs").eval(&st(&[])));
    }

    #[test]
    fn cmp_predicates() {
        let p = LocalPredicate::cmp("x", CmpOp::Ge, 5);
        assert!(p.eval(&st(&[("x", 5)])));
        assert!(!p.eval(&st(&[("x", 4)])));
        assert!(!p.eval(&st(&[])), "unset variable reads 0");
        assert!(LocalPredicate::cmp("x", CmpOp::Lt, 1).eval(&st(&[])));
        assert!(LocalPredicate::cmp("x", CmpOp::Ne, 3).eval(&st(&[("x", 2)])));
        assert!(LocalPredicate::cmp("x", CmpOp::Eq, 2).eval(&st(&[("x", 2)])));
        assert!(LocalPredicate::cmp("x", CmpOp::Le, 2).eval(&st(&[("x", 2)])));
        assert!(LocalPredicate::cmp("x", CmpOp::Gt, 1).eval(&st(&[("x", 2)])));
    }

    #[test]
    fn boolean_connectives() {
        let p = LocalPredicate::And(vec![
            LocalPredicate::var("a"),
            LocalPredicate::Or(vec![LocalPredicate::var("b"), LocalPredicate::var("c")]),
        ]);
        assert!(p.eval(&st(&[("a", 1), ("c", 1)])));
        assert!(!p.eval(&st(&[("a", 1)])));
        assert!(
            LocalPredicate::And(vec![]).eval(&st(&[])),
            "empty ∧ is true"
        );
        assert!(
            !LocalPredicate::Or(vec![]).eval(&st(&[])),
            "empty ∨ is false"
        );
    }

    #[test]
    fn negated_flattens_double_negation() {
        let p = LocalPredicate::var("x").negated().negated();
        assert_eq!(p, LocalPredicate::var("x"));
        assert_eq!(LocalPredicate::True.negated(), LocalPredicate::False);
        assert_eq!(LocalPredicate::False.negated(), LocalPredicate::True);
    }

    #[test]
    fn display_is_readable() {
        let p = LocalPredicate::Or(vec![
            LocalPredicate::not_var("cs"),
            LocalPredicate::cmp("x", CmpOp::Lt, 3),
        ]);
        assert_eq!(format!("{p}"), "(¬(cs) ∨ x < 3)");
    }

    #[test]
    fn disjunctive_constructors() {
        let d = DisjunctivePredicate::at_least_one(3, "avail");
        assert_eq!(d.arity(), 3);
        assert_eq!(d.local(ProcessId(1)), &LocalPredicate::var("avail"));
        let m = DisjunctivePredicate::at_least_one_not(2, "cs");
        assert_eq!(m.local(ProcessId(0)), &LocalPredicate::not_var("cs"));
    }

    #[test]
    fn predicate_serde_roundtrip() {
        let d = DisjunctivePredicate::at_least_one(2, "ok").to_global();
        let json = serde_json::to_string(&d).unwrap();
        let back: GlobalPredicate = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
