//! Enumeration and model checking over the lattice of consistent global
//! states `(G_c, ≤)`.
//!
//! Any consistent global state (= ideal of the `→` poset) is reachable from
//! `⊥` by repeatedly advancing a single process while staying consistent, so
//! a BFS over [`GlobalState::consistent_successors`] enumerates the whole
//! lattice. The lattice can be exponentially large; every entry point takes
//! an explicit `limit` and fails softly when it is exceeded, which is how
//! the NP-hardness of the general problem manifests operationally.

use crate::global::GlobalState;
use crate::model::Deposet;
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// Error: the lattice exploration exceeded the caller's state budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatticeBudgetExceeded {
    /// The budget that was exceeded.
    pub limit: usize,
}

impl fmt::Display for LatticeBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lattice exploration exceeded budget of {} global states",
            self.limit
        )
    }
}

impl std::error::Error for LatticeBudgetExceeded {}

/// Enumerate every consistent global state of `dep`, up to `limit` states.
///
/// Returned in BFS order from `⊥` (a linear extension of `≤`).
pub fn consistent_global_states(
    dep: &Deposet,
    limit: usize,
) -> Result<Vec<GlobalState>, LatticeBudgetExceeded> {
    let init = GlobalState::initial(dep.process_count());
    debug_assert!(init.is_consistent(dep));
    let mut seen: HashSet<GlobalState> = HashSet::new();
    let mut queue: VecDeque<GlobalState> = VecDeque::new();
    let mut out = Vec::new();
    seen.insert(init.clone());
    queue.push_back(init);
    while let Some(g) = queue.pop_front() {
        out.push(g.clone());
        if out.len() > limit {
            return Err(LatticeBudgetExceeded { limit });
        }
        for (_, h) in g.consistent_successors(dep) {
            if seen.insert(h.clone()) {
                queue.push_back(h);
            }
        }
    }
    Ok(out)
}

/// Count the consistent global states (subject to the same budget).
pub fn count_consistent_global_states(
    dep: &Deposet,
    limit: usize,
) -> Result<usize, LatticeBudgetExceeded> {
    consistent_global_states(dep, limit).map(|v| v.len())
}

/// Model-check a predicate over every consistent global state: returns all
/// consistent global states where `pred` holds (used by detection and by
/// exhaustive verification of control strategies on small instances).
pub fn find_all_consistent<F>(
    dep: &Deposet,
    limit: usize,
    mut pred: F,
) -> Result<Vec<GlobalState>, LatticeBudgetExceeded>
where
    F: FnMut(&Deposet, &GlobalState) -> bool,
{
    Ok(consistent_global_states(dep, limit)?
        .into_iter()
        .filter(|g| pred(dep, g))
        .collect())
}

/// Does some consistent global state satisfy `pred`? (*Possibly φ* in the
/// predicate-detection literature.) Short-circuits the BFS.
pub fn possibly<F>(
    dep: &Deposet,
    limit: usize,
    mut pred: F,
) -> Result<Option<GlobalState>, LatticeBudgetExceeded>
where
    F: FnMut(&Deposet, &GlobalState) -> bool,
{
    let init = GlobalState::initial(dep.process_count());
    let mut seen: HashSet<GlobalState> = HashSet::new();
    let mut queue: VecDeque<GlobalState> = VecDeque::new();
    seen.insert(init.clone());
    queue.push_back(init);
    let mut visited = 0usize;
    while let Some(g) = queue.pop_front() {
        visited += 1;
        if visited > limit {
            return Err(LatticeBudgetExceeded { limit });
        }
        if pred(dep, &g) {
            return Ok(Some(g));
        }
        for (_, h) in g.consistent_successors(dep) {
            if seen.insert(h.clone()) {
                queue.push_back(h);
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DeposetBuilder;
    use pctl_causality::ProcessId;

    #[test]
    fn independent_processes_form_a_grid() {
        // Two processes with 2 internal events each, no messages: the
        // lattice is the full 3×3 grid of index pairs.
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[]);
        b.internal(0, &[]);
        b.internal(1, &[]);
        b.internal(1, &[]);
        let d = b.finish().unwrap();
        let all = consistent_global_states(&d, 100).unwrap();
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn message_cuts_the_grid() {
        // P0 send → P1 recv. Grid is 2×2 = 4 cuts, minus the inconsistent
        // ⟨0,1⟩ = 3.
        let mut b = DeposetBuilder::new(2);
        let t = b.send(0, "m");
        b.recv(1, t, &[]);
        let d = b.finish().unwrap();
        assert_eq!(count_consistent_global_states(&d, 100).unwrap(), 3);
    }

    #[test]
    fn bfs_order_is_a_linear_extension() {
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[]);
        b.internal(1, &[]);
        let d = b.finish().unwrap();
        let all = consistent_global_states(&d, 100).unwrap();
        // ⊥ first, ⊤ last, and no state appears before one of its lower
        // covers' predecessors.
        assert_eq!(all.first().unwrap(), &GlobalState::initial(2));
        assert_eq!(all.last().unwrap(), &GlobalState::final_of(&d));
        for (i, g) in all.iter().enumerate() {
            for h in &all[i + 1..] {
                assert!(!h.leq(g) || h == g, "{h:?} ≤ {g:?} but listed later");
            }
        }
    }

    #[test]
    fn budget_is_enforced() {
        let mut b = DeposetBuilder::new(2);
        for _ in 0..5 {
            b.internal(0, &[]);
            b.internal(1, &[]);
        }
        let d = b.finish().unwrap();
        // 36 consistent cuts; budget of 10 must fail.
        assert_eq!(
            consistent_global_states(&d, 10).unwrap_err(),
            LatticeBudgetExceeded { limit: 10 }
        );
        assert_eq!(count_consistent_global_states(&d, 100).unwrap(), 36);
    }

    #[test]
    fn possibly_finds_a_witness() {
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[("x", 1)]);
        b.internal(1, &[("x", 1)]);
        let d = b.finish().unwrap();
        // Both processes have x=1 simultaneously only at ⟨1,1⟩.
        let hit = possibly(&d, 100, |dep, g| {
            g.states().all(|s| dep.state(s).vars.get_bool("x"))
        })
        .unwrap();
        assert_eq!(hit, Some(GlobalState::from_indices(vec![1, 1])));
        // Nothing has x=2.
        let miss = possibly(&d, 100, |dep, g| {
            g.states().any(|s| dep.state(s).vars.get("x") == Some(2))
        })
        .unwrap();
        assert_eq!(miss, None);
    }

    #[test]
    fn find_all_consistent_filters() {
        let mut b = DeposetBuilder::new(1);
        b.internal(0, &[("x", 1)]);
        b.internal(0, &[("x", 0)]);
        let d = b.finish().unwrap();
        let hits = find_all_consistent(&d, 100, |dep, g| {
            dep.state(g.state_of(ProcessId(0))).vars.get_bool("x")
        })
        .unwrap();
        assert_eq!(hits, vec![GlobalState::from_indices(vec![1])]);
    }
}
