//! The incremental per-session store behind the streaming daemon.
//!
//! A batch [`Deposet`] is immutable: adding one state means rebuilding the
//! whole computation (topological sort, clock DP, truth/interval scan). A
//! [`SessionStore`] instead grows **append-only**: a new state only ever
//! extends one process's chain, so everything derived from it can grow in
//! place in amortized O(1) per appended state (times the clock width `n`):
//!
//! * **clocks** — one [`ClockArena`] per process; an append pushes one row,
//!   copies the local predecessor, merges the send-side clock for receives
//!   (incremental Fidge–Mattern), and ticks its own component;
//! * **truth columns** — the registered local predicate is evaluated once
//!   on the new state and pushed onto the process's column;
//! * **false intervals** — the new truth bit either extends the trailing
//!   false run or opens a new one ([`FalseIntervals`] grows in place).
//!
//! Appends arrive in *causal delivery order* by construction: a receive is
//! only accepted after its send was appended (unknown message keys are
//! rejected), so every clock row the append reads is already final and the
//! computation stays acyclic without any global re-validation. The
//! prefix-equivalence proptest in `tests/` pins the central invariant:
//! after every single append, clocks, `precedes`, truth columns and
//! intervals are **bit-identical** to a fresh batch [`Deposet`] +
//! `IntervalIndex` built from the same prefix.
//!
//! Queries run over the store through the [`CausalStore`] trait — the same
//! monomorphised Lemma 2 / control / detection code paths as the batch
//! engine. `verify`, which needs full event/message structure, goes through
//! [`SessionStore::snapshot`] (an honest batch rebuild; verification is
//! lattice-exhaustive anyway).

use crate::causal::CausalStore;
use crate::event::{EventKind, Message};
use crate::intervals::FalseIntervals;
use crate::model::{Deposet, DeposetError};
use crate::predicate::LocalPredicate;
use crate::state::LocalState;
use pctl_causality::arena::{ClockArena, MAX_ROWS};
use pctl_causality::{ClockRef, MsgId, ProcessId, StateId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One append: the event taking a process from its current last state to a
/// new one, plus the variable updates in effect afterwards.
///
/// Message identity on the wire is a *client-chosen* `u64` key (`msg`),
/// mapped to dense [`MsgId`]s internally — a streaming client cannot know
/// the final dense numbering while messages are still in flight.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AppendOp {
    /// A local computation step on `process`.
    Internal {
        /// Appending process.
        process: u32,
        /// Variable updates applied on top of the predecessor state.
        updates: Vec<(String, i64)>,
    },
    /// `process` sends message `msg` (a fresh client-chosen key).
    Send {
        /// Appending process.
        process: u32,
        /// Client-chosen message key; must be fresh for this session.
        msg: u64,
        /// Free-form message tag.
        tag: String,
        /// Variable updates applied on top of the predecessor state.
        updates: Vec<(String, i64)>,
    },
    /// `process` receives message `msg` (a key previously sent).
    Recv {
        /// Appending process.
        process: u32,
        /// Key of a message previously appended with [`AppendOp::Send`].
        msg: u64,
        /// Variable updates applied on top of the predecessor state.
        updates: Vec<(String, i64)>,
    },
}

impl AppendOp {
    /// The process this op appends to.
    pub fn process(&self) -> u32 {
        match self {
            AppendOp::Internal { process, .. }
            | AppendOp::Send { process, .. }
            | AppendOp::Recv { process, .. } => *process,
        }
    }
}

/// Errors rejecting an [`AppendOp`] (the store is unchanged on error).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionError {
    /// The op names a process outside `0..process_count`.
    UnknownProcess {
        /// Offending process index.
        process: u32,
        /// Number of processes in the session.
        count: usize,
    },
    /// A send reuses a message key already used in this session.
    DuplicateMessage {
        /// Offending message key.
        msg: u64,
    },
    /// A receive names a message key never sent.
    UnknownMessage {
        /// Offending message key.
        msg: u64,
    },
    /// A receive names a message that was already delivered.
    AlreadyDelivered {
        /// Offending message key.
        msg: u64,
    },
    /// The computation grew past the 32-bit row addressing.
    TooManyStates {
        /// Total states the append would have produced.
        states: usize,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownProcess { process, count } => {
                write!(f, "process {process} out of range (session has {count})")
            }
            SessionError::DuplicateMessage { msg } => {
                write!(f, "message key {msg} already used by an earlier send")
            }
            SessionError::UnknownMessage { msg } => {
                write!(f, "message key {msg} was never sent")
            }
            SessionError::AlreadyDelivered { msg } => {
                write!(f, "message key {msg} was already received")
            }
            SessionError::TooManyStates { states } => {
                write!(f, "{states} states exceed the 32-bit row addressing")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A sent message awaiting (or having completed) delivery.
#[derive(Clone, Debug)]
struct TrackedMessage {
    tag: String,
    from: StateId,
    to: Option<StateId>,
}

/// Append-only growing computation for one streaming session (module docs).
#[derive(Clone, Debug)]
pub struct SessionStore {
    locals: Vec<LocalPredicate>,
    states: Vec<Vec<LocalState>>,
    events: Vec<Vec<EventKind>>,
    /// Dense by send order; `to` is filled in on delivery.
    messages: Vec<TrackedMessage>,
    /// Client-chosen wire keys → dense send-order ids.
    wire_ids: HashMap<u64, MsgId>,
    /// One arena per process (width `n`, rows = chain length): rows append
    /// without disturbing other processes' storage.
    clocks: Vec<ClockArena>,
    truth: Vec<Vec<bool>>,
    intervals: FalseIntervals,
    /// Scratch row for cross-arena clock merges (avoids per-recv allocs).
    scratch: Vec<u32>,
    total: usize,
    delivered: usize,
    appended_ops: u64,
    approx_bytes: usize,
}

/// Rough per-state bookkeeping overhead (vectors, clock row headers) used
/// by the memory estimate; deliberately coarse but monotone in growth.
const STATE_OVERHEAD: usize = 48;

impl SessionStore {
    /// Open a session: one local predicate per process, every process at
    /// its initial state `⊥ᵢ` with an empty variable assignment.
    pub fn new(locals: Vec<LocalPredicate>) -> Self {
        Self::with_init(locals.len(), locals, |_| LocalState::default())
    }

    /// Open a session with explicit initial variable assignments
    /// (`init[p]` seeds `⊥ₚ`; missing entries default to empty).
    pub fn new_with_init(locals: Vec<LocalPredicate>, init: &[Vec<(String, i64)>]) -> Self {
        Self::with_init(locals.len(), locals, |p| {
            let vars = init
                .get(p)
                .map(|pairs| pairs.iter().map(|(k, v)| (k.as_str(), *v)).collect())
                .unwrap_or_default();
            LocalState::new(vars)
        })
    }

    fn with_init(
        n: usize,
        locals: Vec<LocalPredicate>,
        mut bottom: impl FnMut(usize) -> LocalState,
    ) -> Self {
        assert!(n > 0, "a session needs at least one process");
        assert_eq!(locals.len(), n);
        let mut store = SessionStore {
            locals,
            states: Vec::with_capacity(n),
            events: vec![Vec::new(); n],
            messages: Vec::new(),
            wire_ids: HashMap::new(),
            clocks: Vec::with_capacity(n),
            truth: vec![Vec::new(); n],
            intervals: FalseIntervals::empty(n),
            scratch: vec![0; n],
            total: 0,
            delivered: 0,
            appended_ops: 0,
            approx_bytes: 0,
        };
        for p in 0..n {
            let s = bottom(p);
            store.approx_bytes += state_cost(&s, n);
            let mut arena = ClockArena::zeroed(n, 0);
            arena.push_zero_row();
            arena.tick(0, ProcessId(p as u32));
            store.clocks.push(arena);
            let t = store.locals[p].eval(&s);
            store.truth[p].push(t);
            store.intervals.extend_for_append(ProcessId(p as u32), 0, t);
            store.states.push(vec![s]);
            store.total += 1;
        }
        store
    }

    /// Apply one append. On error the store is unchanged.
    pub fn apply(&mut self, op: &AppendOp) -> Result<(), SessionError> {
        let n = self.states.len();
        let p = op.process() as usize;
        if p >= n {
            return Err(SessionError::UnknownProcess {
                process: op.process(),
                count: n,
            });
        }
        if self.total >= MAX_ROWS || self.states[p].len() >= MAX_ROWS {
            return Err(SessionError::TooManyStates {
                states: self.total + 1,
            });
        }
        // Validate + record the event first (all fallible steps precede any
        // mutation of the derived stores).
        let k = self.states[p].len();
        let pid = ProcessId(p as u32);
        let (event, updates, recv_src) = match op {
            AppendOp::Internal { updates, .. } => (EventKind::Internal, updates, None),
            AppendOp::Send {
                msg, tag, updates, ..
            } => {
                if self.wire_ids.contains_key(msg) {
                    return Err(SessionError::DuplicateMessage { msg: *msg });
                }
                let id = MsgId(self.messages.len() as u32);
                self.wire_ids.insert(*msg, id);
                self.messages.push(TrackedMessage {
                    tag: tag.clone(),
                    from: StateId::new(pid, (k - 1) as u32),
                    to: None,
                });
                self.approx_bytes += tag.len() + STATE_OVERHEAD;
                (EventKind::Send(id), updates, None)
            }
            AppendOp::Recv { msg, updates, .. } => {
                let id = *self
                    .wire_ids
                    .get(msg)
                    .ok_or(SessionError::UnknownMessage { msg: *msg })?;
                let m = &mut self.messages[id.index()];
                if m.to.is_some() {
                    return Err(SessionError::AlreadyDelivered { msg: *msg });
                }
                m.to = Some(StateId::new(pid, k as u32));
                self.delivered += 1;
                (EventKind::Recv(id), updates, Some(m.from))
            }
        };

        // New state payload: predecessor's assignment plus updates.
        let mut state = self.states[p][k - 1].clone();
        state.label = None;
        for (name, v) in updates {
            state.vars.set(name, *v);
        }

        // Incremental Fidge–Mattern: copy the local predecessor, merge the
        // send-side clock for receives, tick own component. Every row read
        // here is already final (causal delivery order, see module docs).
        let r = self.clocks[p].push_zero_row();
        debug_assert_eq!(r, k);
        let mut intra: &[u32] = &[];
        let mut same_proc_src = [0u32; 1];
        let mut external: &[u32] = &[];
        if let Some(from) = recv_src {
            let q = from.process.index();
            if q == p {
                same_proc_src[0] = from.idx() as u32;
                intra = &same_proc_src;
            } else {
                self.scratch
                    .copy_from_slice(self.clocks[q].row(from.idx()).entries());
                external = &self.scratch;
            }
        }
        // `external` borrows `self.scratch` while `fm_row` borrows
        // `self.clocks[p]` — disjoint fields, so this compiles without a
        // copy of the merge logic.
        self.clocks[p].fm_row(k, false, intra, external, pid);

        // Truth column + false intervals grow in place.
        let t = self.locals[p].eval(&state);
        self.truth[p].push(t);
        self.intervals.extend_for_append(pid, k as u32, t);

        self.approx_bytes += state_cost(&state, n);
        self.states[p].push(state);
        self.events[p].push(event);
        self.total += 1;
        self.appended_ops += 1;
        Ok(())
    }

    /// The registered per-process local predicates.
    pub fn locals(&self) -> &[LocalPredicate] {
        &self.locals
    }

    /// The local state payload for `id`.
    pub fn state(&self, id: StateId) -> &LocalState {
        &self.states[id.process.index()][id.idx()]
    }

    /// The vector clock of state `id`.
    pub fn clock(&self, id: StateId) -> ClockRef<'_> {
        self.clocks[id.process.index()].row(id.idx())
    }

    /// The truth value of the session predicate's local at state `s`.
    pub fn truth(&self, s: StateId) -> bool {
        self.truth[s.process.index()][s.idx()]
    }

    /// The truth column of process `p`.
    pub fn truths_of(&self, p: ProcessId) -> &[bool] {
        &self.truth[p.index()]
    }

    /// The incrementally maintained false-interval lists.
    pub fn intervals(&self) -> &FalseIntervals {
        &self.intervals
    }

    /// Total number of local states (including the `n` initial states).
    pub fn total_states(&self) -> usize {
        self.total
    }

    /// Number of ops successfully applied since the session opened.
    pub fn appended_ops(&self) -> u64 {
        self.appended_ops
    }

    /// Messages sent but not yet received.
    pub fn in_flight(&self) -> usize {
        self.messages.len() - self.delivered
    }

    /// Every tracked message's endpoints, in send order: the state before
    /// the send and, when delivered, the state after the receive (`None`
    /// while the message is still in flight). The slicing engine's channel
    /// rules consume exactly this view.
    pub fn message_endpoints(&self) -> impl Iterator<Item = (StateId, Option<StateId>)> + '_ {
        self.messages.iter().map(|m| (m.from, m.to))
    }

    /// Rough, monotone estimate of the heap footprint in bytes — the unit
    /// the daemon's global memory budget is accounted in. Counts clock
    /// words, truth bits, state payloads and message tags; deliberately an
    /// estimate (an exact measurement would cost more than it saves).
    pub fn approx_bytes(&self) -> usize {
        let clock_words: usize = self.clocks.iter().map(ClockArena::allocated_words).sum();
        self.approx_bytes + clock_words * 4 + self.total
    }

    /// Materialise the current prefix as a batch [`Deposet`].
    ///
    /// In-flight sends become `Internal` events (exactly the builder's
    /// `allow_in_flight` semantics — clocks are unaffected, since a send
    /// ticks its sender either way) and delivered messages are renumbered
    /// densely. The result re-validates from scratch, making the snapshot
    /// an independent audit of the incremental construction.
    pub fn snapshot(&self) -> Result<Deposet, DeposetError> {
        let mut remap: Vec<Option<MsgId>> = vec![None; self.messages.len()];
        let mut messages = Vec::with_capacity(self.delivered);
        for (i, m) in self.messages.iter().enumerate() {
            if let Some(to) = m.to {
                let id = MsgId(messages.len() as u32);
                remap[i] = Some(id);
                messages.push(Message {
                    id,
                    tag: m.tag.clone(),
                    from: m.from,
                    to,
                });
            }
        }
        let events: Vec<Vec<EventKind>> = self
            .events
            .iter()
            .map(|evs| {
                evs.iter()
                    .map(|e| match e {
                        EventKind::Send(m) => match remap[m.index()] {
                            Some(id) => EventKind::Send(id),
                            None => EventKind::Internal,
                        },
                        EventKind::Recv(m) => {
                            EventKind::Recv(remap[m.index()].expect("recv implies delivered"))
                        }
                        EventKind::Internal => EventKind::Internal,
                    })
                    .collect()
            })
            .collect();
        Deposet::from_parts(self.states.clone(), events, messages)
    }
}

fn state_cost(s: &LocalState, _n: usize) -> usize {
    STATE_OVERHEAD + s.vars.len() * 24
}

/// Linearize a batch [`Deposet`] into a causally-valid append stream: the
/// per-process initial assignments (seeding [`SessionStore::new_with_init`])
/// plus one [`AppendOp`] per event, in an order where every receive comes
/// after its send (round-robin over the processes, skipping blocked
/// receives). Wire message keys are the dense [`MsgId`] indices.
///
/// Replaying the stream through a [`SessionStore`] with the same predicate
/// reconstructs the computation exactly (variable *removals* between
/// adjacent states cannot be expressed as updates, but no builder-produced
/// computation contains any).
pub fn linearize(dep: &Deposet) -> (Vec<Vec<(String, i64)>>, Vec<AppendOp>) {
    let n = dep.process_count();
    let init: Vec<Vec<(String, i64)>> = (0..n)
        .map(|p| {
            dep.state(StateId::new(ProcessId(p as u32), 0))
                .vars
                .iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect()
        })
        .collect();
    let mut cursor = vec![0usize; n];
    let mut sent = vec![false; dep.messages().len()];
    let total_events: usize = (0..n)
        .map(|p| dep.events_of(ProcessId(p as u32)).len())
        .sum();
    let mut ops = Vec::with_capacity(total_events);
    while ops.len() < total_events {
        let mut progressed = false;
        for (p, cur) in cursor.iter_mut().enumerate() {
            let pid = ProcessId(p as u32);
            let events = dep.events_of(pid);
            while *cur < events.len() {
                let k = *cur;
                let ev = events[k];
                if let EventKind::Recv(m) = ev {
                    if !sent[m.index()] {
                        break; // blocked until the send is emitted
                    }
                }
                let prev = &dep.states_of(pid)[k];
                let next = &dep.states_of(pid)[k + 1];
                let updates: Vec<(String, i64)> = next
                    .vars
                    .iter()
                    .filter(|&(name, v)| prev.vars.get(name) != Some(v))
                    .map(|(name, v)| (name.to_string(), v))
                    .collect();
                ops.push(match ev {
                    EventKind::Internal => AppendOp::Internal {
                        process: p as u32,
                        updates,
                    },
                    EventKind::Send(m) => {
                        sent[m.index()] = true;
                        AppendOp::Send {
                            process: p as u32,
                            msg: m.index() as u64,
                            tag: dep.message(m).tag.clone(),
                            updates,
                        }
                    }
                    EventKind::Recv(m) => AppendOp::Recv {
                        process: p as u32,
                        msg: m.index() as u64,
                        updates,
                    },
                });
                *cur += 1;
                progressed = true;
            }
        }
        assert!(progressed, "valid deposets always have a ready event");
    }
    (init, ops)
}

impl CausalStore for SessionStore {
    #[inline]
    fn process_count(&self) -> usize {
        self.states.len()
    }

    #[inline]
    fn len_of(&self, p: ProcessId) -> usize {
        self.states[p.index()].len()
    }

    /// O(1), same two-word-read form as the batch deposet:
    /// `s → t ⇔ s ≠ t ∧ V(s)[proc(s)] ≤ V(t)[proc(s)]`.
    #[inline]
    fn precedes(&self, s: StateId, t: StateId) -> bool {
        s != t
            && self.clocks[s.process.index()].word(s.idx(), s.process)
                <= self.clocks[t.process.index()].word(t.idx(), s.process)
    }

    /// O(1): one word read from the per-process arena row.
    #[inline]
    fn clock_entry(&self, s: StateId, q: ProcessId) -> u32 {
        self.clocks[s.process.index()].word(s.idx(), q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::DisjunctivePredicate;

    fn two_proc_session() -> SessionStore {
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        SessionStore::new_with_init(
            pred.locals().to_vec(),
            &[vec![("ok".into(), 1)], vec![("ok".into(), 0)]],
        )
    }

    #[test]
    fn initial_states_have_ticked_clocks() {
        let s = two_proc_session();
        assert_eq!(s.total_states(), 2);
        assert_eq!(s.clock(StateId::new(0usize, 0)).entries(), &[1, 0]);
        assert_eq!(s.clock(StateId::new(1usize, 0)).entries(), &[0, 1]);
        assert!(s.truth(StateId::new(0usize, 0)));
        assert!(!s.truth(StateId::new(1usize, 0)));
        assert_eq!(s.intervals().of(ProcessId(1)).len(), 1);
    }

    #[test]
    fn send_recv_merges_clocks_like_batch() {
        let mut s = two_proc_session();
        s.apply(&AppendOp::Send {
            process: 0,
            msg: 7,
            tag: "m".into(),
            updates: vec![],
        })
        .unwrap();
        s.apply(&AppendOp::Recv {
            process: 1,
            msg: 7,
            updates: vec![("ok".into(), 1)],
        })
        .unwrap();
        // Same shape as model.rs::clocks_match_fidge_mattern.
        assert_eq!(s.clock(StateId::new(0usize, 1)).entries(), &[2, 0]);
        assert_eq!(s.clock(StateId::new(1usize, 1)).entries(), &[1, 2]);
        assert!(s.precedes(StateId::new(0usize, 0), StateId::new(1usize, 1)));
        assert!(s.concurrent(StateId::new(0usize, 1), StateId::new(1usize, 1)));
        assert_eq!(s.in_flight(), 0);
        let dep = s.snapshot().unwrap();
        assert_eq!(dep.messages().len(), 1);
    }

    #[test]
    fn rejects_bad_ops_without_mutating() {
        let mut s = two_proc_session();
        let before = s.total_states();
        assert_eq!(
            s.apply(&AppendOp::Internal {
                process: 9,
                updates: vec![]
            }),
            Err(SessionError::UnknownProcess {
                process: 9,
                count: 2
            })
        );
        assert_eq!(
            s.apply(&AppendOp::Recv {
                process: 0,
                msg: 1,
                updates: vec![]
            }),
            Err(SessionError::UnknownMessage { msg: 1 })
        );
        s.apply(&AppendOp::Send {
            process: 0,
            msg: 1,
            tag: "t".into(),
            updates: vec![],
        })
        .unwrap();
        assert_eq!(
            s.apply(&AppendOp::Send {
                process: 0,
                msg: 1,
                tag: "t".into(),
                updates: vec![]
            }),
            Err(SessionError::DuplicateMessage { msg: 1 })
        );
        s.apply(&AppendOp::Recv {
            process: 1,
            msg: 1,
            updates: vec![],
        })
        .unwrap();
        assert_eq!(
            s.apply(&AppendOp::Recv {
                process: 1,
                msg: 1,
                updates: vec![]
            }),
            Err(SessionError::AlreadyDelivered { msg: 1 })
        );
        assert_eq!(s.total_states(), before + 2);
    }

    #[test]
    fn in_flight_sends_snapshot_as_internal() {
        let mut s = two_proc_session();
        s.apply(&AppendOp::Send {
            process: 0,
            msg: 1,
            tag: "t".into(),
            updates: vec![],
        })
        .unwrap();
        assert_eq!(s.in_flight(), 1);
        let dep = s.snapshot().unwrap();
        assert!(dep.messages().is_empty());
        assert_eq!(dep.events_of(ProcessId(0)), &[EventKind::Internal]);
        // Clocks agree even with the in-flight send rewritten.
        assert_eq!(
            dep.clock(StateId::new(0usize, 1)).entries(),
            s.clock(StateId::new(0usize, 1)).entries()
        );
    }

    #[test]
    fn memory_estimate_grows_with_appends() {
        let mut s = two_proc_session();
        let b0 = s.approx_bytes();
        for i in 0..100 {
            s.apply(&AppendOp::Internal {
                process: (i % 2) as u32,
                updates: vec![("ok".into(), i)],
            })
            .unwrap();
        }
        assert!(s.approx_bytes() > b0);
        assert_eq!(s.appended_ops(), 100);
    }

    #[test]
    fn self_message_is_valid() {
        let mut s = two_proc_session();
        s.apply(&AppendOp::Send {
            process: 0,
            msg: 1,
            tag: "loop".into(),
            updates: vec![],
        })
        .unwrap();
        s.apply(&AppendOp::Recv {
            process: 0,
            msg: 1,
            updates: vec![],
        })
        .unwrap();
        let dep = s.snapshot().unwrap();
        assert_eq!(dep.messages().len(), 1);
        for st in dep.state_ids() {
            assert_eq!(dep.clock(st).entries(), s.clock(st).entries());
        }
    }
}
