//! Seeded random workload generators.
//!
//! Three families, used across the workspace's tests and benchmarks:
//!
//! * [`random_deposet`] — unconstrained random computations (messages,
//!   internal events, random boolean variable flips). Ground truth for
//!   property-based testing of causality, detection and control.
//! * [`cs_workload`] — per-process critical-section workloads with **no
//!   messages** and no false interval touching `⊥`/`⊤`, which makes the
//!   disjunctive predicate `∨ᵢ ¬csᵢ` provably controllable (no overlapping
//!   false-interval set can exist without cross-process causality or
//!   boundary intervals). This is the scaling workload for the paper's
//!   Figure 2 algorithm (experiment E2).
//! * [`pipelined_workload`] — critical sections plus a ring of messages, to
//!   exercise the algorithm's causality checks and produce a realistic mix
//!   of feasible and infeasible instances.
//!
//! Everything is driven by a caller-supplied seed; identical seeds give
//! identical computations, bit for bit.

use crate::builder::{DeposetBuilder, MsgToken};
use crate::model::Deposet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_deposet`].
#[derive(Clone, Debug)]
pub struct RandomConfig {
    /// Number of processes.
    pub processes: usize,
    /// Total number of events across all processes.
    pub events: usize,
    /// Probability that a scheduled event is a send (vs internal), given an
    /// empty inbox; receives happen eagerly with probability 1/2 when
    /// possible.
    pub send_prob: f64,
    /// Probability that an event flips the process's boolean variable `ok`.
    pub flip_prob: f64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            processes: 3,
            events: 30,
            send_prob: 0.3,
            flip_prob: 0.3,
        }
    }
}

/// Generate a random valid deposet. All sent messages are delivered (the
/// tail of the schedule drains every inbox), so the result never has
/// in-flight messages.
pub fn random_deposet(cfg: &RandomConfig, seed: u64) -> Deposet {
    assert!(cfg.processes >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DeposetBuilder::new(cfg.processes);
    for p in 0..cfg.processes {
        b.init_vars(p, &[("ok", 1)]);
    }
    let mut inbox: Vec<Vec<MsgToken>> = (0..cfg.processes).map(|_| Vec::new()).collect();
    for _ in 0..cfg.events {
        let p = rng.gen_range(0..cfg.processes);
        let flip = rng.gen_bool(cfg.flip_prob);
        let updates: Vec<(&str, i64)> = if flip {
            let cur = b.var(p, "ok").unwrap_or(1);
            vec![("ok", 1 - cur)]
        } else {
            vec![]
        };
        if !inbox[p].is_empty() && rng.gen_bool(0.5) {
            let tok = inbox[p].remove(0);
            b.recv(p, tok, &updates);
        } else if cfg.processes > 1 && rng.gen_bool(cfg.send_prob) {
            let mut q = rng.gen_range(0..cfg.processes - 1);
            if q >= p {
                q += 1;
            }
            let tok = b.send_with(p, "m", &updates);
            inbox[q].push(tok);
        } else {
            b.internal(p, &updates);
        }
    }
    // Drain inboxes so every message is delivered.
    for (p, pending) in inbox.into_iter().enumerate() {
        for tok in pending {
            b.recv(p, tok, &[]);
        }
    }
    b.finish().expect("generator produces valid deposets")
}

/// Parameters for [`cs_workload`] and [`pipelined_workload`].
#[derive(Clone, Debug)]
pub struct CsConfig {
    /// Number of processes.
    pub processes: usize,
    /// Critical sections (false intervals of `¬cs`) per process — the
    /// paper's `p`.
    pub sections_per_process: usize,
    /// Maximum states inside a critical section (≥ 1).
    pub max_cs_len: usize,
    /// Maximum states between critical sections (≥ 1).
    pub max_gap_len: usize,
}

impl Default for CsConfig {
    fn default() -> Self {
        CsConfig {
            processes: 4,
            sections_per_process: 8,
            max_cs_len: 3,
            max_gap_len: 3,
        }
    }
}

/// Critical-section workload with no messages: each process alternates
/// non-critical gaps and critical sections (`cs = 1` runs). The first and
/// last states are always non-critical, so the disjunctive predicate
/// "at least one process not in its CS" is always controllable.
pub fn cs_workload(cfg: &CsConfig, seed: u64) -> Deposet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DeposetBuilder::new(cfg.processes);
    for p in 0..cfg.processes {
        b.init_vars(p, &[("cs", 0)]);
        for _ in 0..cfg.sections_per_process {
            // gap (≥ 1 non-critical state already present before each CS)
            for _ in 0..rng.gen_range(0..cfg.max_gap_len) {
                b.internal(p, &[]);
            }
            b.internal(p, &[("cs", 1)]);
            for _ in 0..rng.gen_range(0..cfg.max_cs_len) {
                b.internal(p, &[]);
            }
            b.internal(p, &[("cs", 0)]);
        }
    }
    b.finish().expect("cs workload is valid")
}

/// Critical-section workload threaded with a ring of messages: after each
/// critical section, process `p` sends to `(p + 1) mod n`, and receives its
/// own pending messages before entering the next section. Produces causality
/// between sections, so instances may be feasible or infeasible.
pub fn pipelined_workload(cfg: &CsConfig, seed: u64) -> Deposet {
    let n = cfg.processes;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DeposetBuilder::new(n);
    let mut inbox: Vec<Vec<MsgToken>> = (0..n).map(|_| Vec::new()).collect();
    for p in 0..n {
        b.init_vars(p, &[("cs", 0)]);
    }
    for round in 0..cfg.sections_per_process {
        for p in 0..n {
            while !inbox[p].is_empty() {
                let tok = inbox[p].remove(0);
                b.recv(p, tok, &[]);
            }
            for _ in 0..rng.gen_range(0..cfg.max_gap_len) {
                b.internal(p, &[]);
            }
            b.internal(p, &[("cs", 1)]);
            for _ in 0..rng.gen_range(0..cfg.max_cs_len) {
                b.internal(p, &[]);
            }
            b.internal(p, &[("cs", 0)]);
            if n > 1 && round + 1 < cfg.sections_per_process {
                let tok = b.send(p, "ring");
                inbox[(p + 1) % n].push(tok);
            }
        }
    }
    for (p, pending) in inbox.into_iter().enumerate() {
        for tok in pending {
            b.recv(p, tok, &[]);
        }
    }
    b.finish().expect("pipelined workload is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::FalseIntervals;
    use crate::predicate::DisjunctivePredicate;
    use pctl_causality::ProcessId;

    #[test]
    fn random_deposet_is_deterministic_per_seed() {
        let cfg = RandomConfig::default();
        let a = random_deposet(&cfg, 99);
        let b = random_deposet(&cfg, 99);
        assert_eq!(a.total_states(), b.total_states());
        assert_eq!(a.messages(), b.messages());
        let c = random_deposet(&cfg, 100);
        // Overwhelmingly likely to differ.
        assert!(
            a.total_states() != c.total_states()
                || a.messages() != c.messages()
                || (0..a.process_count())
                    .any(|p| a.states_of(ProcessId(p as u32)) != c.states_of(ProcessId(p as u32)))
        );
    }

    #[test]
    fn cs_workload_has_requested_interval_counts() {
        let cfg = CsConfig {
            processes: 3,
            sections_per_process: 5,
            ..CsConfig::default()
        };
        let d = cs_workload(&cfg, 1);
        let f = FalseIntervals::extract(&d, &DisjunctivePredicate::at_least_one_not(3, "cs"));
        for p in d.processes() {
            assert_eq!(f.of(p).len(), 5, "each process has exactly 5 CS intervals");
            // No interval touches ⊥ or ⊤.
            for i in f.of(p) {
                assert!(i.lo > 0);
                assert!((i.hi as usize) < d.len_of(p) - 1);
            }
        }
        assert!(d.messages().is_empty());
    }

    #[test]
    fn pipelined_workload_has_messages_and_intervals() {
        let cfg = CsConfig {
            processes: 3,
            sections_per_process: 4,
            ..CsConfig::default()
        };
        let d = pipelined_workload(&cfg, 2);
        assert!(!d.messages().is_empty());
        let f = FalseIntervals::extract(&d, &DisjunctivePredicate::at_least_one_not(3, "cs"));
        for p in d.processes() {
            assert_eq!(f.of(p).len(), 4);
        }
    }

    #[test]
    fn single_process_random_deposet() {
        let cfg = RandomConfig {
            processes: 1,
            events: 10,
            send_prob: 0.5,
            flip_prob: 0.5,
        };
        let d = random_deposet(&cfg, 3);
        assert_eq!(d.process_count(), 1);
        assert!(
            d.messages().is_empty(),
            "single process cannot send to others"
        );
        assert_eq!(d.total_states(), 11);
    }
}
