//! The computation store: shared Lemma-2 interval primitives and a
//! precomputed truth/interval index.
//!
//! Before this module existed, three crates carried their own copies of the
//! same two computations: (a) scanning a process's state sequence with a
//! local predicate to produce truth columns and maximal false runs
//! (`intervals::extract`, plus inline re-evaluation in the verification
//! sweep), and (b) the Lemma 2 *crossable / overlapping* pair condition
//! (`pctl-core::overlap`, `pctl-detect::strong`, and the off-line
//! algorithm's crossing loop). This module is the single home for both; the
//! other call sites delegate here.
//!
//! ## The pair condition
//!
//! A set of false intervals `I₁ … Iₙ` (one per process) *overlaps* iff
//!
//! ```text
//! ∀ i ≠ j:  (pred(Iᵢ.lo) → succ(Iⱼ.hi))  ∨  (Iᵢ.lo = ⊥ᵢ)  ∨  (Iⱼ.hi = ⊤ⱼ)
//! ```
//!
//! [`pair_overlaps`] is that disjunction for one ordered pair, and
//! [`crossable`] is its exact negation — the off-line algorithm's test for
//! whether `Iⱼ` can be fully crossed before `Iᵢ` is entered. Keeping the
//! two as literal negations of each other in one place is what makes the
//! control/detection duality (`controller exists ⟺ no overlap`) auditable.
//!
//! ## The interval index
//!
//! [`IntervalIndex`] evaluates every local predicate exactly once per state
//! into a flat truth bitmap (row-indexed like the clock arena) and derives
//! the per-process false-interval lists from the same pass. Per-process
//! columns are independent, so construction fans out over
//! [`crate::par::ordered_map`] with a deterministic merge.

use crate::causal::CausalStore;
use crate::intervals::{FalseIntervals, Interval};
use crate::model::Deposet;
use crate::par::ordered_map;
use crate::predicate::{DisjunctivePredicate, LocalPredicate};
use pctl_causality::{ProcessId, StateId};

/// Evaluate `local` once on every state of process `p`: the truth column.
pub fn truth_of_process(dep: &Deposet, p: ProcessId, local: &LocalPredicate) -> Vec<bool> {
    dep.states_of(p).iter().map(|s| local.eval(s)).collect()
}

/// Run-scan a truth column into its maximal *false* runs.
///
/// # Panics
/// Panics if the column is longer than `u32` interval bounds can address —
/// deposet construction already rejects such computations with
/// `TooManyStates`, so this guards direct callers only.
pub fn intervals_from_truth(p: ProcessId, truth: &[bool]) -> Vec<Interval> {
    assert!(
        truth.len() <= pctl_causality::arena::MAX_ROWS,
        "truth column length {} exceeds u32 interval bounds",
        truth.len()
    );
    let mut out = Vec::new();
    let mut run_start: Option<u32> = None;
    for (k, &t) in truth.iter().enumerate() {
        match (t, run_start) {
            (false, None) => run_start = Some(k as u32),
            (true, Some(lo)) => {
                out.push(Interval {
                    process: p,
                    lo,
                    hi: k as u32 - 1,
                });
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(lo) = run_start {
        out.push(Interval {
            process: p,
            lo,
            hi: truth.len() as u32 - 1,
        });
    }
    out
}

/// Can `ij` be fully crossed before `ii` is entered? True iff `ii` does not
/// start at `⊥`, `ij` does not end at `⊤`, and the event entering `ii`
/// does **not** happen-before the event ending `ij`. Exact negation of
/// [`pair_overlaps`].
///
/// Generic over any [`CausalStore`] so the same Lemma 2 primitive serves
/// both the batch [`Deposet`] and a growing per-session store.
pub fn crossable<C: CausalStore + ?Sized>(dep: &C, ii: &Interval, ij: &Interval) -> bool {
    ii.lo != 0
        && (ij.hi as usize) < dep.len_of(ij.process) - 1
        && !dep.precedes(
            ii.lo_state().predecessor().expect("lo ≠ ⊥ checked above"),
            ij.hi_state().successor(),
        )
}

/// The Lemma 2 condition for one ordered pair `(ii, ij)`:
/// `pred(ii.lo) → succ(ij.hi)`, or `ii.lo = ⊥`, or `ij.hi = ⊤`.
pub fn pair_overlaps<C: CausalStore + ?Sized>(dep: &C, ii: &Interval, ij: &Interval) -> bool {
    !crossable(dep, ii, ij)
}

/// Check the overlap condition on a full set (one interval per process).
///
/// # Panics
/// Panics if `set` does not have exactly one interval per process of `dep`.
pub fn set_overlaps<C: CausalStore + ?Sized>(dep: &C, set: &[Interval]) -> bool {
    assert_eq!(set.len(), dep.process_count(), "one interval per process");
    for (i, ii) in set.iter().enumerate() {
        for (j, ij) in set.iter().enumerate() {
            if i != j && crossable(dep, ii, ij) {
                return false;
            }
        }
    }
    true
}

/// Polynomial front-advance search for an overlapping set: one interval
/// per process drawn from each list in `intervals`. Returns the witness or
/// `None`.
///
/// While some pair `(i, j)` has `crossable(front(i), front(j))`, the front
/// interval of `j` can be discarded — it can be fully crossed before
/// `front(i)` (or any later interval of `i`) is entered, so it belongs to
/// no overlapping set. If some process runs out of intervals there is no
/// overlap; if no pair is crossable the fronts are the witness.
///
/// Discards are processed with a worklist instead of restarting the pair
/// scan from scratch after every advance: only pairs involving a process
/// whose front *changed* can become crossable (the other pairs' verdicts
/// depend solely on their own unchanged fronts), so each changed process is
/// pushed once and rechecked against every partner in both directions.
/// Because `crossable` is monotone in its first argument along a process
/// chain (`pred(I.lo) → pred(I'.lo)` for a later interval `I'`), a discard
/// justified once stays justified forever — the discard order cannot change
/// the fixpoint, and the result (including the exact witness) is identical
/// to the quadratic-rescan formulation. Cost drops from `O(T·n²)` to
/// `O((T + n)·n)` crossability checks for `T` total intervals.
pub fn find_overlap<C: CausalStore + ?Sized>(
    dep: &C,
    intervals: &FalseIntervals,
) -> Option<Vec<Interval>> {
    let n = dep.process_count();
    assert_eq!(intervals.process_count(), n);
    let mut pos = vec![0usize; n];
    let front = |pos: &[usize], i: usize| -> Option<Interval> {
        intervals.of(ProcessId(i as u32)).get(pos[i]).copied()
    };
    // Every process starts dirty: all pairs are unchecked.
    let mut stack: Vec<usize> = (0..n).collect();
    let mut on_stack = vec![true; n];
    while let Some(p) = stack.pop() {
        on_stack[p] = false;
        'rescan: loop {
            let fp = front(&pos, p)?;
            for q in 0..n {
                if q == p {
                    continue;
                }
                let fq = front(&pos, q)?;
                if crossable(dep, &fq, &fp) {
                    // front(p) can be crossed before front(q) is entered.
                    pos[p] += 1;
                    continue 'rescan; // p's pairs need rechecking now
                }
                if crossable(dep, &fp, &fq) {
                    pos[q] += 1;
                    front(&pos, q)?; // q ran out of intervals ⇒ infeasible
                    if !on_stack[q] {
                        stack.push(q);
                        on_stack[q] = true;
                    }
                }
            }
            break; // p survived a full scan with its current front
        }
    }
    // No dirty process ⇒ every pair was checked against the current fronts
    // and none is crossable: the fronts are the witness.
    let witness: Vec<Interval> = (0..n).map(|i| front(&pos, i).unwrap()).collect();
    debug_assert!(set_overlaps(dep, &witness));
    Some(witness)
}

/// Precomputed truth bitmap + false intervals for one local predicate per
/// process, over a whole computation.
///
/// The truth bitmap is flat and row-indexed exactly like the deposet's
/// clock arena: state `s` occupies bit `offsets[proc(s)] + s.idx()`. Every
/// predicate is evaluated exactly once per state, at build time; all later
/// queries are array reads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalIndex {
    offsets: Vec<usize>,
    truth: Vec<bool>,
    intervals: FalseIntervals,
}

impl IntervalIndex {
    /// Build the index for a disjunctive predicate (one local per process).
    ///
    /// # Panics
    /// Panics if the predicate arity differs from the process count.
    pub fn build(dep: &Deposet, pred: &DisjunctivePredicate) -> Self {
        assert_eq!(
            pred.arity(),
            dep.process_count(),
            "disjunctive predicate arity must equal process count"
        );
        let locals: Vec<&LocalPredicate> = dep.processes().map(|p| pred.local(p)).collect();
        Self::build_refs(dep, &locals)
    }

    /// Build the index from explicit per-process local predicates.
    pub fn build_each(dep: &Deposet, locals: &[LocalPredicate]) -> Self {
        assert_eq!(locals.len(), dep.process_count());
        let refs: Vec<&LocalPredicate> = locals.iter().collect();
        Self::build_refs(dep, &refs)
    }

    fn build_refs(dep: &Deposet, locals: &[&LocalPredicate]) -> Self {
        let _prof = pctl_prof::span("interval_index_build");
        // Columns are independent per process, so any grouping fans out
        // deterministically (merge in process order — see par module docs).
        // Under a multi-shard plan the grouping follows the shards, so the
        // truth/interval build parallelises exactly like the clock store;
        // single-shard plans keep the finer per-process fan-out.
        let plan = dep.shard_plan();
        let columns: Vec<(Vec<bool>, Vec<Interval>)> = if plan.shard_count() > 1 {
            let shard_ids: Vec<usize> = (0..plan.shard_count()).collect();
            let per_shard: Vec<Vec<(Vec<bool>, Vec<Interval>)>> =
                ordered_map(&shard_ids, |_, &s| {
                    plan.processes_of(s)
                        .map(|p| {
                            let p = ProcessId(p as u32);
                            let truth = truth_of_process(dep, p, locals[p.index()]);
                            let iv = intervals_from_truth(p, &truth);
                            (truth, iv)
                        })
                        .collect()
                });
            per_shard.into_iter().flatten().collect()
        } else {
            let procs: Vec<ProcessId> = dep.processes().collect();
            ordered_map(&procs, |i, &p| {
                let truth = truth_of_process(dep, p, locals[i]);
                let iv = intervals_from_truth(p, &truth);
                (truth, iv)
            })
        };
        let offsets = dep.offsets().to_vec();
        let mut truth = Vec::with_capacity(*offsets.last().unwrap_or(&0));
        let mut per_proc = Vec::with_capacity(columns.len());
        for (col, iv) in columns {
            truth.extend_from_slice(&col);
            per_proc.push(iv);
        }
        pctl_prof::set_gauge(
            "interval_count",
            per_proc.iter().map(|iv| iv.len() as u64).sum(),
        );
        pctl_prof::set_gauge("truth_column_bytes", truth.len() as u64);
        IntervalIndex {
            offsets,
            truth,
            intervals: FalseIntervals::from_raw(per_proc),
        }
    }

    /// The truth value of the indexed local predicate at state `s`.
    #[inline]
    pub fn truth(&self, s: StateId) -> bool {
        self.truth[self.offsets[s.process.index()] + s.idx()]
    }

    /// The truth column of process `p`.
    pub fn truths_of(&self, p: ProcessId) -> &[bool] {
        &self.truth[self.offsets[p.index()]..self.offsets[p.index() + 1]]
    }

    /// The derived false-interval lists.
    pub fn intervals(&self) -> &FalseIntervals {
        &self.intervals
    }

    /// Consume the index, keeping only the interval lists.
    pub fn into_intervals(self) -> FalseIntervals {
        self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DeposetBuilder;
    use crate::generator::{random_deposet, RandomConfig};

    fn two_proc() -> Deposet {
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 1)]);
        b.init_vars(1, &[("ok", 0)]);
        b.internal(0, &[("ok", 0)]);
        b.internal(0, &[("ok", 1)]);
        b.internal(1, &[("ok", 1)]);
        b.finish().unwrap()
    }

    #[test]
    fn truth_and_runs_compose_to_extract() {
        let dep = two_proc();
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        let idx = IntervalIndex::build(&dep, &pred);
        assert_eq!(idx.truths_of(ProcessId(0)), &[true, false, true]);
        assert_eq!(idx.truths_of(ProcessId(1)), &[false, true]);
        assert!(idx.truth(StateId::new(0usize, 0)));
        assert!(!idx.truth(StateId::new(1usize, 0)));
        assert_eq!(idx.intervals(), &FalseIntervals::extract(&dep, &pred));
    }

    #[test]
    fn index_matches_extract_on_random_traces() {
        for seed in 0..20 {
            let cfg = RandomConfig {
                processes: 4,
                events: 30,
                ..RandomConfig::default()
            };
            let dep = random_deposet(&cfg, seed);
            let pred = DisjunctivePredicate::at_least_one(4, "ok");
            let idx = IntervalIndex::build(&dep, &pred);
            assert_eq!(idx.intervals(), &FalseIntervals::extract(&dep, &pred));
            for s in dep.state_ids() {
                assert_eq!(idx.truth(s), pred.local(s.process).eval(dep.state(s)));
            }
        }
    }

    #[test]
    fn crossable_is_the_exact_negation_of_pair_overlaps() {
        for seed in 0..10 {
            let cfg = RandomConfig {
                processes: 3,
                events: 24,
                ..RandomConfig::default()
            };
            let dep = random_deposet(&cfg, seed);
            let iv = FalseIntervals::extract(&dep, &DisjunctivePredicate::at_least_one(3, "ok"));
            for p in dep.processes() {
                for q in dep.processes() {
                    for ii in iv.of(p) {
                        for ij in iv.of(q) {
                            assert_ne!(crossable(&dep, ii, ij), pair_overlaps(&dep, ii, ij));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_truth_column_yields_no_intervals() {
        assert_eq!(intervals_from_truth(ProcessId(0), &[]), vec![]);
        assert_eq!(
            intervals_from_truth(ProcessId(1), &[false, false]),
            vec![Interval {
                process: ProcessId(1),
                lo: 0,
                hi: 1
            }]
        );
    }
}
