//! Local states and their variable payloads.
//!
//! In the paper's model (Section 3) "a state corresponds to an assignment of
//! values to all variables in the process". We represent that assignment as
//! a name-sorted association list from variable names to 64-bit integers;
//! booleans are encoded as 0/1. Local predicates are evaluated against this
//! payload.
//!
//! Names are interned as `Arc<str>`: the builder derives each state by
//! cloning its predecessor's assignment and applying updates, so along a
//! process's whole state chain every variable name is one shared allocation
//! and cloning an assignment copies refcounted pointers instead of
//! re-allocating strings. Computations with millions of states keep exactly
//! one copy of each distinct name per chain.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Variable assignment carried by a local state.
///
/// Serializes as a JSON map (`{"name": value, …}`), same wire format as a
/// sorted map of names to integers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Variables {
    /// Sorted by name; names are shared across clones (see module docs).
    entries: Vec<(Arc<str>, i64)>,
}

impl Variables {
    /// Empty assignment.
    pub fn new() -> Self {
        Variables::default()
    }

    /// Build from an iterator of `(name, value)` pairs; on duplicate names
    /// the last value wins (map semantics).
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, i64)>) -> Self {
        let mut v = Variables::new();
        for (k, val) in pairs {
            v.set(k, val);
        }
        v
    }

    #[inline]
    fn find(&self, name: &str) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| (**k).cmp(name))
    }

    /// Value of `name`, or `None` if unset.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.find(name).ok().map(|i| self.entries[i].1)
    }

    /// Value of `name` interpreted as a boolean; unset variables are `false`.
    pub fn get_bool(&self, name: &str) -> bool {
        self.get(name).is_some_and(|v| v != 0)
    }

    /// Set `name` to `value`, returning the previous value.
    ///
    /// Updating an existing variable keeps the interned name (no
    /// allocation); only the first assignment of a fresh name allocates.
    pub fn set(&mut self, name: &str, value: i64) -> Option<i64> {
        match self.find(name) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (Arc::from(name), value));
                None
            }
        }
    }

    /// Set a boolean variable.
    pub fn set_bool(&mut self, name: &str, value: bool) -> Option<i64> {
        self.set(name, i64::from(value))
    }

    /// Iterate over `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.entries.iter().map(|(k, v)| (&**k, *v))
    }

    /// Number of variables set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no variables are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Serialize for Variables {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(
            self.entries
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Deserialize for Variables {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        // A BTreeMap sorts and dedups (last value wins) exactly like `set`.
        let map = std::collections::BTreeMap::<String, i64>::from_value(v)?;
        Ok(Variables {
            entries: map.into_iter().map(|(k, v)| (Arc::from(k), v)).collect(),
        })
    }
}

impl<'a> FromIterator<(&'a str, i64)> for Variables {
    fn from_iter<T: IntoIterator<Item = (&'a str, i64)>>(iter: T) -> Self {
        Variables::from_pairs(iter)
    }
}

/// A local state: one point in the sequential execution of a process.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalState {
    /// Variable assignment in effect at this state.
    pub vars: Variables,
    /// Optional human-readable label (used by the paper's Figure 4 example
    /// to name states `a` … `f`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub label: Option<String>,
}

impl LocalState {
    /// A state with the given assignment and no label.
    pub fn new(vars: Variables) -> Self {
        LocalState { vars, label: None }
    }

    /// Attach a label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

impl fmt::Display for LocalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = &self.label {
            write!(f, "{l}")?;
        }
        write!(f, "{{")?;
        for (i, (k, v)) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_bool_is_false() {
        let v = Variables::new();
        assert!(!v.get_bool("avail"));
        assert_eq!(v.get("avail"), None);
    }

    #[test]
    fn set_and_read_back() {
        let mut v = Variables::new();
        assert_eq!(v.set("x", 3), None);
        assert_eq!(v.set("x", 4), Some(3));
        assert_eq!(v.get("x"), Some(4));
        v.set_bool("flag", true);
        assert!(v.get_bool("flag"));
        v.set_bool("flag", false);
        assert!(!v.get_bool("flag"));
    }

    #[test]
    fn from_pairs_sorted_iteration() {
        let v = Variables::from_pairs([("b", 2), ("a", 1)]);
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![("a", 1), ("b", 2)]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn display_renders_label_and_vars() {
        let s = LocalState::new(Variables::from_pairs([("cs", 1)])).with_label("e");
        assert_eq!(format!("{s}"), "e{cs=1}");
    }

    #[test]
    fn variables_serialize_as_a_plain_map() {
        let v = Variables::from_pairs([("b", 2), ("a", 1)]);
        assert_eq!(serde_json::to_string(&v).unwrap(), r#"{"a":1,"b":2}"#);
        let back: Variables = serde_json::from_str(r#"{"b":2,"a":1}"#).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn from_pairs_last_value_wins() {
        let v = Variables::from_pairs([("x", 1), ("x", 2)]);
        assert_eq!(v.get("x"), Some(2));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn state_serde_roundtrip() {
        let s = LocalState::new(Variables::from_pairs([("x", -7)])).with_label("a");
        let json = serde_json::to_string(&s).unwrap();
        let back: LocalState = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
