//! Deposets: distributed computations as decomposed partially ordered sets.
//!
//! This crate implements Section 3 of Tarafdar & Garg, *Predicate Control
//! for Active Debugging of Distributed Programs* (IPPS 1998):
//!
//! * the [`Deposet`] model — per-process local state sequences, message
//!   (`;`) edges, and O(1) causality queries via precomputed Fidge–Mattern
//!   vector clocks ([`model`]);
//! * safe incremental construction with [`builder::DeposetBuilder`] (the
//!   deposet constraints D1–D3 hold by construction);
//! * [`global::GlobalState`]s, consistency, and the lattice `(G_c, ≤)` with
//!   enumeration/model-checking utilities ([`lattice`]);
//! * [`sequences::GlobalSequence`]s — executions as subset-advancing paths
//!   through the lattice, with validation and satisfaction checking;
//! * [`predicate`]s — local predicates, general boolean global predicates,
//!   and the disjunctive class the control algorithms target;
//! * false-[`intervals`] extraction, the representation the off-line control
//!   algorithm actually manipulates;
//! * the computation [`store`] — the single home of the Lemma 2
//!   crossable/overlap primitives and a precomputed truth/interval index,
//!   built per process in parallel via [`par::ordered_map`];
//! * the [`shard`] layer — per-shard clock-arena slabs under a
//!   [`shard::ShardPlan`], with a level-synchronised frontier-round DP that
//!   scales construction toward multi-million-state computations;
//! * computation [`slice`]s for *regular* predicates (Mittal–Garg) — the
//!   join-irreducible sub-computation containing exactly the satisfying
//!   consistent cuts, with the [`predicate::PredicateClass`] abstraction
//!   that routes each class to the right engine path;
//! * a stable JSON [`trace`] format and Graphviz [`dot`] export.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod causal;
pub mod dot;
pub mod event;
pub mod generator;
pub mod global;
pub mod intervals;
pub mod lattice;
pub mod model;
pub mod par;
pub mod predicate;
pub mod scenarios;
pub mod sequences;
pub mod session;
pub mod shard;
pub mod slice;
pub mod state;
pub mod store;
pub mod trace;

pub use builder::{BuildError, DeposetBuilder, MsgToken};
pub use causal::CausalStore;
pub use event::{EventKind, Message};
pub use global::GlobalState;
pub use intervals::{FalseIntervals, Interval};
pub use model::{Deposet, DeposetError};
pub use predicate::{
    ClassError, CmpOp, DisjunctivePredicate, GlobalPredicate, LocalPredicate, PredicateClass,
    RegularPredicate,
};
pub use sequences::{GlobalSequence, SequenceError};
pub use session::{linearize, AppendOp, SessionError, SessionStore};
pub use shard::{ShardPlan, ShardedClocks};
pub use slice::SlicedDeposet;
pub use state::{LocalState, Variables};
pub use store::IntervalIndex;

// Re-export the id types for downstream convenience.
pub use pctl_causality::{MsgId, ProcessId, StateId, VectorClock};
