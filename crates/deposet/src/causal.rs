//! The [`CausalStore`] abstraction: the minimal causality surface the
//! control/detection algorithms need.
//!
//! The off-line algorithms (Lemma 2 overlap primitives, the crossing loop,
//! weak-conjunctive detection) never look at state payloads, events, or
//! messages — they only ask three questions: how many processes are there,
//! how long is each local chain, and does `s → t` hold. Abstracting those
//! three behind a trait lets the same algorithm code run over an immutable
//! batch [`Deposet`](crate::model::Deposet) *and* over a growing
//! [`SessionStore`](crate::session::SessionStore) that a streaming daemon
//! appends to between queries, with zero duplication and zero dynamic
//! dispatch (all call sites monomorphise).
//!
//! Implementations must answer `precedes` consistently with a valid
//! happened-before relation (irreflexive, transitive, containing the local
//! chains); both implementors in this crate derive it from Fidge–Mattern
//! vector clocks, so the O(1) two-word-read bound carries over.

use pctl_causality::{ProcessId, StateId};

/// A distributed computation viewed purely through its causal structure.
///
/// See the [module docs](self) for the design rationale. All provided
/// methods are derived from the three required ones and must not be
/// overridden with inconsistent semantics.
pub trait CausalStore {
    /// Number of processes `n`.
    fn process_count(&self) -> usize;

    /// Number of local states currently on process `p` (always ≥ 1: every
    /// process has at least `⊥ᵢ`).
    fn len_of(&self, p: ProcessId) -> usize;

    /// `s → t`: causally precedes (happened-before). Irreflexive.
    fn precedes(&self, s: StateId, t: StateId) -> bool;

    /// Initial state `⊥ᵢ` of process `p`.
    fn bottom(&self, p: ProcessId) -> StateId {
        StateId::new(p, 0)
    }

    /// Final (currently last) state `⊤ᵢ` of process `p`.
    fn top(&self, p: ProcessId) -> StateId {
        StateId::new(p, (self.len_of(p) - 1) as u32)
    }

    /// `s →̲ t`: causally precedes or equal.
    fn precedes_eq(&self, s: StateId, t: StateId) -> bool {
        s == t || self.precedes(s, t)
    }

    /// `s ∥ t`: concurrent (neither causally precedes the other, `s ≠ t`).
    fn concurrent(&self, s: StateId, t: StateId) -> bool {
        s != t && !self.precedes(s, t) && !self.precedes(t, s)
    }

    /// Whether `id` names a state currently in the computation.
    fn contains(&self, id: StateId) -> bool {
        id.process.index() < self.process_count() && id.idx() < self.len_of(id.process)
    }

    /// Total number of local states across all processes.
    fn total_states(&self) -> usize {
        (0..self.process_count())
            .map(|p| self.len_of(ProcessId(p as u32)))
            .sum()
    }

    /// The Fidge–Mattern clock entry `V(s)[q]`: for `q = proc(s)` this is
    /// `s.index + 1`; otherwise it is `k + 1` for the latest state `(q, k)`
    /// causally preceding `s`, or `0` when no state of `q` precedes `s`.
    ///
    /// Consistency of a cut `G` is exactly `∀ i ≠ j:
    /// clock_entry(G[j], i) ≤ G[i]` — the slicing engine leans on this.
    ///
    /// The default derives the entry from `precedes` by binary search along
    /// `q`'s chain (precedence of `(q, k)` before `s` is monotone in `k`);
    /// stores that keep materialised clock rows override it with an O(1)
    /// word read.
    fn clock_entry(&self, s: StateId, q: ProcessId) -> u32 {
        if s.process == q {
            return s.index + 1;
        }
        // Largest k with (q, k) → s, monotone in k: entries below `lo` all
        // precede, entries at or above `hi` do not.
        let (mut lo, mut hi) = (0u32, self.len_of(q) as u32);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.precedes(StateId::new(q, mid), s) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl CausalStore for crate::model::Deposet {
    #[inline]
    fn process_count(&self) -> usize {
        crate::model::Deposet::process_count(self)
    }

    #[inline]
    fn len_of(&self, p: ProcessId) -> usize {
        crate::model::Deposet::len_of(self, p)
    }

    #[inline]
    fn precedes(&self, s: StateId, t: StateId) -> bool {
        crate::model::Deposet::precedes(self, s, t)
    }

    #[inline]
    fn clock_entry(&self, s: StateId, q: ProcessId) -> u32 {
        self.clock(s).get(q)
    }
}

impl<T: CausalStore + ?Sized> CausalStore for &T {
    #[inline]
    fn process_count(&self) -> usize {
        (**self).process_count()
    }

    #[inline]
    fn len_of(&self, p: ProcessId) -> usize {
        (**self).len_of(p)
    }

    #[inline]
    fn precedes(&self, s: StateId, t: StateId) -> bool {
        (**self).precedes(s, t)
    }

    #[inline]
    fn clock_entry(&self, s: StateId, q: ProcessId) -> u32 {
        (**self).clock_entry(s, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DeposetBuilder;

    #[test]
    fn deposet_trait_view_matches_inherent_methods() {
        let mut b = DeposetBuilder::new(2);
        let t = b.send(0, "m");
        b.recv(1, t, &[]);
        b.internal(0, &[]);
        let d = b.finish().unwrap();
        let c: &dyn CausalStore = &d;
        assert_eq!(c.process_count(), d.process_count());
        for p in d.processes() {
            assert_eq!(c.len_of(p), d.len_of(p));
            assert_eq!(c.bottom(p), d.bottom(p));
            assert_eq!(c.top(p), d.top(p));
        }
        assert_eq!(c.total_states(), d.total_states());
        for s in d.state_ids() {
            assert!(c.contains(s));
            for t in d.state_ids() {
                assert_eq!(c.precedes(s, t), d.precedes(s, t));
                assert_eq!(c.precedes_eq(s, t), d.precedes_eq(s, t));
                assert_eq!(c.concurrent(s, t), d.concurrent(s, t));
            }
        }
    }
}
