//! Global states of a deposet, their consistency, and the lattice order.
//!
//! A global state picks exactly one local state per process. It is
//! *consistent* iff its members are pairwise concurrent — equivalently, iff
//! it is a down-set cut of `(S, →)`. The set of consistent global states
//! ordered component-wise (`G ≤ H ⇔ ∀i: G[i] ≼ H[i]`) forms a lattice
//! (Mattern \[8]); the paper's global sequences are paths through this
//! lattice that advance a (possibly empty-stuttered) subset of processes per
//! step.

use crate::model::Deposet;
use pctl_causality::{ProcessId, StateId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A global state: for each process, the index of its local state.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct GlobalState {
    cut: Vec<u32>,
}

impl GlobalState {
    /// The initial global state `⊥ = (⊥₁, …, ⊥ₙ)`.
    pub fn initial(n: usize) -> Self {
        GlobalState { cut: vec![0; n] }
    }

    /// The final global state `⊤ = (⊤₁, …, ⊤ₙ)` of `dep`.
    pub fn final_of(dep: &Deposet) -> Self {
        GlobalState {
            cut: dep.processes().map(|p| dep.top(p).index).collect(),
        }
    }

    /// Build from explicit per-process state indices.
    pub fn from_indices(cut: Vec<u32>) -> Self {
        GlobalState { cut }
    }

    /// Number of processes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.cut.len()
    }

    /// The state index of process `p` (the paper's `G[i]`).
    #[inline]
    pub fn index_of(&self, p: ProcessId) -> u32 {
        self.cut[p.index()]
    }

    /// The state id of process `p` within this global state.
    #[inline]
    pub fn state_of(&self, p: ProcessId) -> StateId {
        StateId {
            process: p,
            index: self.cut[p.index()],
        }
    }

    /// All member state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.cut
            .iter()
            .enumerate()
            .map(|(p, &k)| StateId::new(p, k))
    }

    /// Raw indices.
    pub fn indices(&self) -> &[u32] {
        &self.cut
    }

    /// Lattice order `self ≤ other` (component-wise).
    pub fn leq(&self, other: &GlobalState) -> bool {
        self.cut.len() == other.cut.len() && self.cut.iter().zip(&other.cut).all(|(a, b)| a <= b)
    }

    /// Lattice meet (component-wise minimum).
    pub fn meet(&self, other: &GlobalState) -> GlobalState {
        GlobalState {
            cut: self
                .cut
                .iter()
                .zip(&other.cut)
                .map(|(a, b)| *a.min(b))
                .collect(),
        }
    }

    /// Lattice join (component-wise maximum).
    pub fn join(&self, other: &GlobalState) -> GlobalState {
        GlobalState {
            cut: self
                .cut
                .iter()
                .zip(&other.cut)
                .map(|(a, b)| *a.max(b))
                .collect(),
        }
    }

    /// A copy with process `p` advanced by one local state.
    pub fn advanced(&self, p: ProcessId) -> GlobalState {
        let mut cut = self.cut.clone();
        cut[p.index()] += 1;
        GlobalState { cut }
    }

    /// A copy with every process in `procs` advanced by one local state
    /// (one step of a global sequence).
    pub fn advanced_all(&self, procs: impl IntoIterator<Item = ProcessId>) -> GlobalState {
        let mut cut = self.cut.clone();
        for p in procs {
            cut[p.index()] += 1;
        }
        GlobalState { cut }
    }

    /// Whether `self` is within bounds of `dep` (each index names a state).
    pub fn in_bounds(&self, dep: &Deposet) -> bool {
        self.cut.len() == dep.process_count()
            && self
                .cut
                .iter()
                .enumerate()
                .all(|(p, &k)| (k as usize) < dep.len_of(ProcessId(p as u32)))
    }

    /// Consistency: all members pairwise concurrent. O(n²) with clocks:
    /// `G` is consistent iff `∀ i ≠ j: V(G[j])[i] ≤ idx(G[i]) ` — i.e. no
    /// member knows of a state on another process beyond the cut.
    pub fn is_consistent(&self, dep: &Deposet) -> bool {
        debug_assert!(self.in_bounds(dep));
        let n = self.cut.len();
        for j in 0..n {
            let vj = dep.clock(self.state_of(ProcessId(j as u32)));
            for i in 0..n {
                if i != j && vj.get(ProcessId(i as u32)) > self.cut[i] {
                    return false;
                }
            }
        }
        true
    }

    /// Single-process successor cuts that remain consistent, given `self`
    /// consistent: advancing `i` keeps consistency iff everything the new
    /// state depends on is already inside the cut.
    pub fn consistent_successors<'a>(
        &'a self,
        dep: &'a Deposet,
    ) -> impl Iterator<Item = (ProcessId, GlobalState)> + 'a {
        dep.processes().filter_map(move |p| {
            let next_idx = self.cut[p.index()] + 1;
            if (next_idx as usize) >= dep.len_of(p) {
                return None;
            }
            let next = StateId::new(p, next_idx);
            let v = dep.clock(next);
            // Clock entries count states (index + 1), so `v.get(q) ≤ cut[q]`
            // says: every state of q that the new state causally depends on
            // lies strictly inside the cut (index < cut[q] + 1 ⇒ no member
            // of the cut precedes the new state).
            let ok = dep
                .processes()
                .all(|q| q == p || v.get(q) <= self.cut[q.index()]);
            ok.then(|| (p, self.advanced(p)))
        })
    }
}

impl fmt::Debug for GlobalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{:?}", self.cut)
    }
}

impl fmt::Display for GlobalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, k) in self.cut.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DeposetBuilder;

    /// P0 sends to P1: states (0,0),(0,1) / (1,0),(1,1).
    fn msg_dep() -> Deposet {
        let mut b = DeposetBuilder::new(2);
        let t = b.send(0, "m");
        b.recv(1, t, &[]);
        b.finish().unwrap()
    }

    #[test]
    fn initial_and_final_are_consistent() {
        let d = msg_dep();
        assert!(GlobalState::initial(2).is_consistent(&d));
        assert!(GlobalState::final_of(&d).is_consistent(&d));
    }

    #[test]
    fn cut_across_message_is_inconsistent() {
        let d = msg_dep();
        // P1 past the receive while P0 before the send: (0, 1).
        let g = GlobalState::from_indices(vec![0, 1]);
        assert!(!g.is_consistent(&d));
        // P0 past the send while P1 before the receive: fine (in flight).
        let h = GlobalState::from_indices(vec![1, 0]);
        assert!(h.is_consistent(&d));
    }

    #[test]
    fn lattice_order_meet_join() {
        let a = GlobalState::from_indices(vec![2, 0]);
        let b = GlobalState::from_indices(vec![1, 1]);
        assert!(!a.leq(&b) && !b.leq(&a));
        assert_eq!(a.meet(&b), GlobalState::from_indices(vec![1, 0]));
        assert_eq!(a.join(&b), GlobalState::from_indices(vec![2, 1]));
        assert!(a.meet(&b).leq(&a));
        assert!(a.leq(&a.join(&b)));
    }

    #[test]
    fn consistent_successors_respect_messages() {
        let d = msg_dep();
        let init = GlobalState::initial(2);
        let succs: Vec<_> = init.consistent_successors(&d).collect();
        // From ⟨0,0⟩ only P0 may advance (P1's next state needs P0's send).
        assert_eq!(succs.len(), 1);
        assert_eq!(succs[0].0, ProcessId(0));
        let g = &succs[0].1;
        assert_eq!(g, &GlobalState::from_indices(vec![1, 0]));
        // Now both… only P1 can advance (P0 is at top).
        let succs2: Vec<_> = g.consistent_successors(&d).collect();
        assert_eq!(succs2.len(), 1);
        assert_eq!(succs2[0].1, GlobalState::from_indices(vec![1, 1]));
    }

    #[test]
    fn advanced_all_moves_a_subset() {
        let g = GlobalState::initial(3);
        let h = g.advanced_all([ProcessId(0), ProcessId(2)]);
        assert_eq!(h.indices(), &[1, 0, 1]);
    }

    #[test]
    fn state_of_and_states() {
        let g = GlobalState::from_indices(vec![3, 5]);
        assert_eq!(g.state_of(ProcessId(1)), StateId::new(1usize, 5));
        let all: Vec<_> = g.states().collect();
        assert_eq!(all, vec![StateId::new(0usize, 3), StateId::new(1usize, 5)]);
    }

    #[test]
    fn display_format() {
        assert_eq!(
            format!("{}", GlobalState::from_indices(vec![1, 2])),
            "⟨1,2⟩"
        );
    }
}
