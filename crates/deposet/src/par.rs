//! Deterministic scoped-thread fan-out.
//!
//! The computation store and the engines on top of it parallelize only
//! *embarrassingly parallel* layers — per-process interval construction,
//! per-seed verification sweeps, per-scenario bench fan-out. Every use goes
//! through [`ordered_map`], which guarantees the merged output is in input
//! order regardless of thread scheduling: results are produced per
//! contiguous chunk and stitched back by chunk index, so a parallel run is
//! bit-identical to the sequential one (the determinism argument in
//! DESIGN.md §8).

use std::num::NonZeroUsize;
use std::thread;

/// Number of workers [`ordered_map`] would use for `len` items.
///
/// Capped by `std::thread::available_parallelism` (1 when unknown) and by
/// the item count; 0-item and 1-core cases degrade to sequential.
pub fn worker_count(len: usize) -> usize {
    let cores = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Map `f` over `items` with scoped worker threads, returning results in
/// input order (`out[i] == f(i, &items[i])`).
///
/// Deterministic by construction: the items are split into contiguous
/// chunks, each worker owns whole chunks, and the per-chunk result vectors
/// are concatenated in chunk order. With one core (or one item) this runs
/// sequentially on the calling thread — same results, same order.
pub fn ordered_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Contiguous chunking: chunk c covers [c*size, min((c+1)*size, len)).
    let size = items.len().div_ceil(workers);
    let chunks: Vec<(usize, &[T])> = items
        .chunks(size)
        .enumerate()
        .map(|(c, chunk)| (c * size, chunk))
        .collect();
    let mut per_chunk: Vec<Vec<R>> = thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&(base, chunk)| {
                let f = &f;
                s.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(k, t)| f(base + k, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ordered_map worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in per_chunk.drain(..) {
        out.extend(chunk);
    }
    out
}

/// Run `f` once per item with exclusive access, fanning out one scoped
/// thread per item when more than one core is available.
///
/// The sharded clock DP uses this for its per-round gather/compute phases:
/// each shard owns exactly one item (its arena or its gather buffer), the
/// mutations are disjoint by construction, and the caller's closure only
/// *reads* shared state — so the result is bit-identical to the sequential
/// single-core run regardless of scheduling (same determinism argument as
/// [`ordered_map`]).
pub fn ordered_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if worker_count(items.len()) <= 1 {
        for (i, t) in items.iter_mut().enumerate() {
            f(i, t);
        }
        return;
    }
    thread::scope(|s| {
        for (i, t) in items.iter_mut().enumerate() {
            let f = &f;
            s.spawn(move || f(i, t));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = ordered_map(&items, |i, &x| (i as u64, x * 2));
        assert_eq!(out.len(), 97);
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*doubled, items[i] * 2);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u32> = ordered_map(&[] as &[u32], |_, &x| x);
        assert!(none.is_empty());
        assert_eq!(ordered_map(&[7u32], |i, &x| x + i as u32), vec![7]);
    }

    #[test]
    fn matches_sequential_reference() {
        let items: Vec<usize> = (0..50).collect();
        let seq: Vec<usize> = items.iter().enumerate().map(|(i, &x)| i * 31 + x).collect();
        let par = ordered_map(&items, |i, &x| i * 31 + x);
        assert_eq!(par, seq);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1) >= 1);
        assert!(worker_count(1000) >= 1);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut items: Vec<u64> = (0..17).collect();
        ordered_for_each_mut(&mut items, |i, x| *x += 100 * i as u64);
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, i as u64 + 100 * i as u64);
        }
        let mut none: Vec<u64> = Vec::new();
        ordered_for_each_mut(&mut none, |_, _| unreachable!());
    }
}
