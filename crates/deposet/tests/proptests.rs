//! Property-based tests for the deposet layer, using random computations as
//! the universe and brute-force definitions as ground truth.

use pctl_causality::{Dag, ProcessId, StateId};
use pctl_deposet::generator::{random_deposet, RandomConfig};
use pctl_deposet::lattice::consistent_global_states;
use pctl_deposet::sequences::rand_compat::RngLike;
use pctl_deposet::sequences::random_global_sequence;
use pctl_deposet::slice::SlicedDeposet;
use pctl_deposet::{trace, Deposet, GlobalState, LocalPredicate, RegularPredicate};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_config() -> impl Strategy<Value = (RandomConfig, u64)> {
    (1usize..5, 0usize..25, 0u64..1_000_000).prop_map(|(n, events, seed)| {
        (
            RandomConfig {
                processes: n,
                events,
                send_prob: 0.4,
                flip_prob: 0.4,
            },
            seed,
        )
    })
}

/// Ground truth `→` by explicit transitive closure over `im ∪ ;`.
fn ground_truth_reach(dep: &Deposet) -> (Vec<usize>, pctl_causality::graph::Reachability) {
    let offsets = dep.offsets();
    let total = *offsets.last().unwrap();
    let mut g = Dag::new(total);
    for p in dep.processes() {
        for k in 0..dep.len_of(p).saturating_sub(1) {
            g.add_edge(offsets[p.index()] + k, offsets[p.index()] + k + 1);
        }
    }
    for m in dep.messages() {
        g.add_edge(
            offsets[m.from.process.index()] + m.from.idx(),
            offsets[m.to.process.index()] + m.to.idx(),
        );
    }
    (
        offsets.to_vec(),
        g.transitive_closure().expect("valid deposet is acyclic"),
    )
}

struct Lcg(u64);
impl RngLike for Lcg {
    fn below(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vector-clock `precedes` agrees exactly with the transitive closure
    /// of `im ∪ ;` on every state pair.
    #[test]
    fn vclock_precedes_matches_transitive_closure((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let (offsets, reach) = ground_truth_reach(&dep);
        let node = |s: StateId| offsets[s.process.index()] + s.idx();
        let ids: Vec<StateId> = dep.state_ids().collect();
        for &s in &ids {
            for &t in &ids {
                let truth = s != t && reach.reaches(node(s), node(t));
                prop_assert_eq!(
                    dep.precedes(s, t),
                    truth,
                    "precedes({:?},{:?}) disagrees with closure", s, t
                );
            }
        }
    }

    /// `is_consistent` agrees with the definition: all members pairwise
    /// concurrent.
    #[test]
    fn consistency_matches_pairwise_concurrency((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        // Enumerate ALL global states (bounded: products of small chains).
        let sizes: Vec<usize> = dep.processes().map(|p| dep.len_of(p)).collect();
        let total: usize = sizes.iter().product();
        prop_assume!(total <= 4096);
        let n = sizes.len();
        for mut code in 0..total {
            let mut idx = vec![0u32; n];
            for (i, &sz) in sizes.iter().enumerate() {
                idx[i] = (code % sz) as u32;
                code /= sz;
            }
            let g = GlobalState::from_indices(idx);
            let definition = {
                let members: Vec<StateId> = g.states().collect();
                members.iter().enumerate().all(|(a, &s)| {
                    members.iter().skip(a + 1).all(|&t| dep.concurrent(s, t))
                })
            };
            prop_assert_eq!(g.is_consistent(&dep), definition, "cut {:?}", g);
        }
    }

    /// Every cut enumerated by the lattice BFS is consistent, the BFS finds
    /// the same set as brute force, and ⊥/⊤ are present.
    #[test]
    fn lattice_enumeration_is_sound_and_complete((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let sizes: Vec<usize> = dep.processes().map(|p| dep.len_of(p)).collect();
        let total: usize = sizes.iter().product();
        prop_assume!(total <= 4096);
        let bfs = consistent_global_states(&dep, total + 1).unwrap();
        let mut brute = Vec::new();
        let n = sizes.len();
        for mut code in 0..total {
            let mut idx = vec![0u32; n];
            for (i, &sz) in sizes.iter().enumerate() {
                idx[i] = (code % sz) as u32;
                code /= sz;
            }
            let g = GlobalState::from_indices(idx);
            if g.is_consistent(&dep) {
                brute.push(g);
            }
        }
        let mut bfs_sorted = bfs.clone();
        bfs_sorted.sort();
        brute.sort();
        prop_assert_eq!(bfs_sorted, brute);
        prop_assert!(bfs.contains(&GlobalState::initial(n)));
        prop_assert!(bfs.contains(&GlobalState::final_of(&dep)));
    }

    /// Random maximal global sequences always validate.
    #[test]
    fn random_sequences_validate((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let mut rng = Lcg(seed ^ 0xdead_beef);
        for _ in 0..5 {
            let seq = random_global_sequence(&dep, &mut rng);
            prop_assert_eq!(seq.validate(&dep), Ok(()));
        }
    }

    /// Trace JSON round-trip is the identity on structure and clocks.
    #[test]
    fn trace_roundtrip_identity((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let back = trace::from_json(&trace::to_json(&dep)).unwrap();
        prop_assert_eq!(back.process_count(), dep.process_count());
        for p in dep.processes() {
            prop_assert_eq!(back.states_of(p), dep.states_of(p));
            prop_assert_eq!(back.events_of(p), dep.events_of(p));
        }
        prop_assert_eq!(back.messages(), dep.messages());
        for s in dep.state_ids() {
            prop_assert_eq!(back.clock(s), dep.clock(s));
        }
    }

    /// The (possibly parallel) fan-out inside `FalseIntervals::extract` and
    /// `IntervalIndex::build` is bit-identical to a hand-rolled sequential
    /// per-process construction — the determinism contract of
    /// `par::ordered_map` observed end to end through the store.
    #[test]
    fn parallel_extract_is_bit_identical_to_sequential((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let pred = pctl_deposet::DisjunctivePredicate::at_least_one(dep.process_count(), "ok");
        let sequential: Vec<Vec<pctl_deposet::Interval>> = dep
            .processes()
            .map(|p| {
                let truth = pctl_deposet::store::truth_of_process(&dep, p, pred.local(p));
                pctl_deposet::store::intervals_from_truth(p, &truth)
            })
            .collect();
        let extracted = pctl_deposet::FalseIntervals::extract(&dep, &pred);
        let index = pctl_deposet::IntervalIndex::build(&dep, &pred);
        for p in dep.processes() {
            prop_assert_eq!(extracted.of(p), &sequential[p.index()][..]);
            prop_assert_eq!(index.intervals().of(p), &sequential[p.index()][..]);
        }
    }

    /// The sharded store is bit-identical to the flat store under every
    /// plan: same clocks, same `precedes` verdicts, same interval index.
    /// The merges are component-wise max over the same edge multiset, so
    /// the partition must not be observable — this is the determinism
    /// contract of `shard::fill_sharded`.
    #[test]
    fn sharded_store_is_bit_identical_to_flat(
        (cfg, seed) in arb_config(),
        shards in 1usize..6,
    ) {
        let flat = random_deposet(&cfg, seed);
        let n = flat.process_count();
        let (st, ev, ms) = flat.clone().into_parts();
        let sharded = Deposet::from_parts_with_plan(
            st,
            ev,
            ms,
            Some(pctl_deposet::ShardPlan::with_shards(n, shards)),
        )
        .expect("same parts validate under any plan");
        let ids: Vec<StateId> = flat.state_ids().collect();
        for &s in &ids {
            prop_assert_eq!(sharded.clock(s), flat.clock(s), "clock of {:?}", s);
            for &t in &ids {
                prop_assert_eq!(
                    sharded.precedes(s, t),
                    flat.precedes(s, t),
                    "precedes({:?},{:?})", s, t
                );
            }
        }
        let pred = pctl_deposet::DisjunctivePredicate::at_least_one(n, "ok");
        prop_assert_eq!(
            pctl_deposet::IntervalIndex::build(&sharded, &pred),
            pctl_deposet::IntervalIndex::build(&flat, &pred)
        );
    }

    /// The worklist `find_overlap` computes the same answer — including the
    /// exact witness — as the quadratic restart-from-scratch formulation it
    /// replaced (discards are permanently justified, so the fixpoint is
    /// order-independent).
    #[test]
    fn find_overlap_matches_quadratic_reference((cfg, seed) in arb_config()) {
        use pctl_deposet::store;
        let dep = random_deposet(&cfg, seed);
        let pred = pctl_deposet::DisjunctivePredicate::at_least_one(dep.process_count(), "ok");
        let intervals = pctl_deposet::FalseIntervals::extract(&dep, &pred);
        let quadratic = || -> Option<Vec<pctl_deposet::Interval>> {
            let n = dep.process_count();
            let mut pos = vec![0usize; n];
            'restart: loop {
                let mut fronts = Vec::with_capacity(n);
                for (p, &at) in pos.iter().enumerate() {
                    fronts.push(*intervals.of(ProcessId(p as u32)).get(at)?);
                }
                for i in 0..n {
                    for j in 0..n {
                        if i != j && store::crossable(&dep, &fronts[i], &fronts[j]) {
                            pos[j] += 1;
                            continue 'restart;
                        }
                    }
                }
                return Some(fronts);
            }
        };
        prop_assert_eq!(store::find_overlap(&dep, &intervals), quadratic());
    }

    /// The meet and join of two consistent cuts are consistent (the lattice
    /// property, Mattern [8]).
    #[test]
    fn consistent_cuts_form_a_lattice((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let all = match consistent_global_states(&dep, 2000) {
            Ok(v) => v,
            Err(_) => return Ok(()), // too big; skip
        };
        prop_assume!(all.len() <= 60);
        for a in &all {
            for b in &all {
                prop_assert!(a.meet(b).is_consistent(&dep), "meet of {:?} {:?}", a, b);
                prop_assert!(a.join(b).is_consistent(&dep), "join of {:?} {:?}", a, b);
            }
        }
    }
}

#[test]
fn processes_iterator_is_dense() {
    let dep = random_deposet(&RandomConfig::default(), 5);
    let ps: Vec<ProcessId> = dep.processes().collect();
    assert_eq!(ps, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
}

/// Derive a pseudo-random regular violation from the seed: a conjunction of
/// `ok`-constraints over a subset of processes, with `ChannelsEmpty` mixed
/// in half the time.
fn arb_regular(n: usize, seed: u64) -> RegularPredicate {
    let mut conjuncts = Vec::new();
    for i in 0..n {
        match (seed >> (2 * i)) & 3 {
            0 => conjuncts.push(RegularPredicate::local(i, LocalPredicate::var("ok"))),
            1 => conjuncts.push(RegularPredicate::local(i, LocalPredicate::not_var("ok"))),
            _ => {}
        }
    }
    if seed & (1 << 16) != 0 {
        conjuncts.push(RegularPredicate::ChannelsEmpty);
    }
    RegularPredicate::And(conjuncts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The slice contains exactly the consistent cuts satisfying the
    /// regular violation (brute-force lattice enumeration as oracle), and
    /// its min/max cuts, membership test, and frontier-possible bitmap all
    /// agree with that set.
    #[test]
    fn slice_is_exactly_the_satisfying_sublattice((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let violation = arb_regular(dep.process_count(), seed ^ 0x9e3779b97f4a7c15);
        let all = match consistent_global_states(&dep, 20_000) {
            Ok(v) => v,
            Err(_) => return Ok(()), // too big; skip
        };
        let expected: BTreeSet<&[u32]> = all
            .iter()
            .filter(|g| violation.eval(&dep, g))
            .map(|g| g.indices())
            .collect();

        let slice = SlicedDeposet::build(&dep, &violation).unwrap();
        let cuts = slice.cuts(20_000).unwrap();
        let got: BTreeSet<&[u32]> = cuts.iter().map(|g| g.indices()).collect();
        prop_assert_eq!(&got, &expected, "slice cuts ≠ oracle for {}", violation);

        // Extremality of min/max.
        prop_assert_eq!(slice.is_empty(), expected.is_empty());
        if let Some(min) = slice.min_cut() {
            for c in &expected {
                prop_assert!(min.indices().iter().zip(*c).all(|(a, b)| a <= b));
            }
            prop_assert!(expected.contains(min.indices()));
        }
        if let Some(max) = slice.max_cut() {
            for c in &expected {
                prop_assert!(max.indices().iter().zip(*c).all(|(a, b)| a >= b));
            }
            prop_assert!(expected.contains(max.indices()));
        }

        // Membership test and frontier-possible bitmap agree with the set.
        for g in &all {
            prop_assert_eq!(slice.satisfies(g), expected.contains(g.indices()));
        }
        for i in 0..dep.process_count() {
            let p = ProcessId(i as u32);
            for k in 0..dep.len_of(p) as u32 {
                let truth = expected.iter().any(|c| c[i] == k);
                prop_assert_eq!(
                    slice.frontier_possible(StateId::new(p, k)),
                    truth,
                    "frontier_possible(({},{}))", i, k
                );
            }
        }
    }
}
