//! Hot-path profiler for the predicate-control workspace.
//!
//! A hierarchical scoped-timer profiler built for instrumenting the
//! engine's hot paths (clock-arena DP, interval-index construction, the
//! offline control algorithm, the online scapegoat step loop) without
//! perturbing them:
//!
//! * **Near-zero cost when disabled.** [`span`] reads one relaxed atomic
//!   and returns an inert guard — the same contract as the telemetry
//!   layer's `NullRecorder`. No clock is read, nothing allocates.
//! * **Thread-local span stacks.** Each thread keeps its own stack of open
//!   frames and its own aggregate table; the global registry is only
//!   locked when a thread's stack empties (one flush per top-level span),
//!   so scoped-thread fan-outs profile cleanly.
//! * **Nested attribution.** A span's key is its full stack path
//!   (`deposet_from_parts/fill_fidge_mattern`), and every phase records
//!   both *total* and *self* time (total minus time spent in child spans).
//! * **Nanosecond monotonic clocks.** Timestamps come from a process-wide
//!   [`std::time::Instant`] epoch, so span records from different threads
//!   share one timeline.
//! * **Strictly observational.** The profiler never feeds back into the
//!   code it measures: enabling it must leave every control decision
//!   bit-identical (property-tested in `pctl-sim`).
//!
//! Besides timers the profiler keeps a small registry of **gauges** —
//! last-write-wins levels such as the clock arena's `allocated_words`, the
//! interval-index interval count, and truth-column bytes — so a scrape of
//! the aggregates also answers "how big is the store right now".
//!
//! Completed spans (up to a bounded ring, drop-newest) are exportable as
//! Chrome `trace_event` complete events via [`chrome_trace_json`]: open
//! the file in Perfetto to see engine internals as phase slices alongside
//! the simulator's lanes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum completed-span records retained for Chrome export. Aggregates
/// are unaffected; past the cap, new records are dropped (and counted).
pub const SPAN_RECORD_CAP: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Turn the profiler on or off (process-wide).
///
/// Spans opened while enabled complete and are recorded even if the
/// profiler is disabled before they close; spans opened while disabled
/// cost one atomic load and record nothing.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first measurement so concurrent first
        // spans agree on t=0.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the profiler is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Aggregate statistics for one phase path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Completed spans on this path.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Total minus time attributed to child spans, nanoseconds.
    pub self_ns: u64,
    /// Shortest span, nanoseconds.
    pub min_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
}

impl PhaseStats {
    fn new() -> Self {
        PhaseStats {
            count: 0,
            total_ns: 0,
            self_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn add(&mut self, dur_ns: u64, child_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.self_ns += dur_ns.saturating_sub(child_ns);
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
    }

    fn merge(&mut self, other: &PhaseStats) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One completed span, for Chrome export.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Full stack path (`parent/child`).
    pub path: String,
    /// Profiler thread lane (assigned per thread, first-use order).
    pub lane: u32,
    /// Start, nanoseconds since the profiler epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Aggregated snapshot of everything the profiler has recorded.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfReport {
    /// Per-path aggregates, sorted by path.
    pub phases: BTreeMap<String, PhaseStats>,
    /// Last-write-wins gauges (arena words, interval counts, …).
    pub gauges: BTreeMap<String, u64>,
    /// Span records dropped past [`SPAN_RECORD_CAP`].
    pub dropped_spans: u64,
}

impl ProfReport {
    /// Sum of `count` over every phase (each nested span counts once).
    pub fn span_count(&self) -> u64 {
        self.phases.values().map(|p| p.count).sum()
    }

    /// Human-readable table of phases and gauges.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.phases.is_empty() {
            out.push_str("profiler: no spans recorded\n");
        } else {
            out.push_str("phase                                       count    total(us)     self(us)      max(us)\n");
            for (path, p) in &self.phases {
                let _ = writeln!(
                    out,
                    "{path:<42} {:>6} {:>12.1} {:>12.1} {:>12.1}",
                    p.count,
                    p.total_ns as f64 / 1e3,
                    p.self_ns as f64 / 1e3,
                    p.max_ns as f64 / 1e3,
                );
            }
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} = {v}");
        }
        if self.dropped_spans > 0 {
            let _ = writeln!(out, "span records dropped: {}", self.dropped_spans);
        }
        out
    }
}

#[derive(Default)]
struct Global {
    phases: BTreeMap<String, PhaseStats>,
    gauges: BTreeMap<String, u64>,
    spans: Vec<SpanRecord>,
    dropped_spans: u64,
}

fn global() -> &'static Mutex<Global> {
    static GLOBAL: OnceLock<Mutex<Global>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Global::default()))
}

struct Frame {
    /// Length of the thread path before this frame's name was appended.
    prev_len: usize,
    start_ns: u64,
    child_ns: u64,
}

struct Local {
    path: String,
    stack: Vec<Frame>,
    phases: BTreeMap<String, PhaseStats>,
    spans: Vec<SpanRecord>,
    dropped_spans: u64,
    lane: u32,
}

impl Local {
    fn new() -> Self {
        Local {
            path: String::new(),
            stack: Vec::new(),
            phases: BTreeMap::new(),
            spans: Vec::new(),
            dropped_spans: 0,
            lane: NEXT_LANE.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn flush(&mut self) {
        if self.phases.is_empty() && self.spans.is_empty() && self.dropped_spans == 0 {
            return;
        }
        let mut g = global().lock().expect("profiler registry poisoned");
        for (path, stats) in std::mem::take(&mut self.phases) {
            g.phases
                .entry(path)
                .or_insert_with(PhaseStats::new)
                .merge(&stats);
        }
        for rec in self.spans.drain(..) {
            if g.spans.len() < SPAN_RECORD_CAP {
                g.spans.push(rec);
            } else {
                g.dropped_spans += 1;
            }
        }
        g.dropped_spans += self.dropped_spans;
        self.dropped_spans = 0;
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::new());
}

/// RAII guard for one profiled phase; the span closes when it drops.
///
/// Obtain via [`span`]. Must drop in LIFO order within a thread (the
/// natural order of nested scopes).
#[must_use = "the span measures until the guard drops"]
pub struct Span {
    armed: bool,
}

/// Open a named phase span on this thread's stack.
///
/// When the profiler is disabled this is one atomic load; no clock read,
/// no allocation.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { armed: false };
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let prev_len = l.path.len();
        if prev_len > 0 {
            l.path.push('/');
        }
        l.path.push_str(name);
        l.stack.push(Frame {
            prev_len,
            start_ns: now_ns(),
            child_ns: 0,
        });
    });
    Span { armed: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = now_ns();
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let Some(frame) = l.stack.pop() else { return };
            let dur = end.saturating_sub(frame.start_ns);
            let path = l.path.clone();
            l.path.truncate(frame.prev_len);
            if let Some(parent) = l.stack.last_mut() {
                parent.child_ns += dur;
            }
            l.phases
                .entry(path.clone())
                .or_insert_with(PhaseStats::new)
                .add(dur, frame.child_ns);
            if l.spans.len() < SPAN_RECORD_CAP {
                let lane = l.lane;
                l.spans.push(SpanRecord {
                    path,
                    lane,
                    start_ns: frame.start_ns,
                    dur_ns: dur,
                });
            } else {
                l.dropped_spans += 1;
            }
            if l.stack.is_empty() {
                l.flush();
            }
        });
    }
}

/// Set gauge `name` to `value` (last write wins). No-op while disabled.
pub fn set_gauge(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let mut g = global().lock().expect("profiler registry poisoned");
    g.gauges.insert(name.to_owned(), value);
}

/// Snapshot the aggregates recorded so far.
///
/// Flushes the calling thread's local table first; other threads flush
/// whenever their span stack empties, so after joining workers (or between
/// top-level spans) the report is complete.
pub fn report() -> ProfReport {
    LOCAL.with(|l| l.borrow_mut().flush());
    let g = global().lock().expect("profiler registry poisoned");
    ProfReport {
        phases: g.phases.clone(),
        gauges: g.gauges.clone(),
        dropped_spans: g.dropped_spans,
    }
}

/// Clear every aggregate, gauge, and span record.
///
/// The calling thread's local table is cleared too; other threads'
/// *unflushed* frames (spans still open elsewhere) survive a reset.
pub fn reset() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.phases.clear();
        l.spans.clear();
        l.dropped_spans = 0;
    });
    let mut g = global().lock().expect("profiler registry poisoned");
    g.phases.clear();
    g.gauges.clear();
    g.spans.clear();
    g.dropped_spans = 0;
}

/// Measure the per-call cost of [`span`] while the profiler is *disabled*
/// (the tax every instrumented hot path pays in production). Returns
/// nanoseconds per call averaged over `iters` calls.
///
/// # Panics
/// Panics if called while the profiler is enabled — the probe would then
/// measure (and pollute) the enabled path instead.
pub fn disabled_span_cost_ns(iters: u32) -> f64 {
    assert!(
        !enabled(),
        "disabled_span_cost_ns must run with the profiler off"
    );
    assert!(iters > 0);
    let t0 = Instant::now();
    for _ in 0..iters {
        let _sp = span("overhead_probe");
    }
    t0.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Render the retained span records as Chrome `trace_event` JSON
/// (complete `"ph":"X"` events, timestamps in microseconds). Open in
/// `chrome://tracing` or Perfetto.
pub fn chrome_trace_json() -> String {
    LOCAL.with(|l| l.borrow_mut().flush());
    let g = global().lock().expect("profiler registry poisoned");
    chrome_trace_of(&g.spans)
}

/// [`chrome_trace_json`] over an explicit record list (for tests).
pub fn chrome_trace_of(spans: &[SpanRecord]) -> String {
    use serde_json::Value;
    let obj = |entries: Vec<(&str, Value)>| {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    };
    let mut events: Vec<Value> = Vec::with_capacity(spans.len() + 1);
    events.push(obj(vec![
        ("name", Value::String("process_name".into())),
        ("ph", Value::String("M".into())),
        ("pid", Value::UInt(1)),
        ("tid", Value::UInt(0)),
        (
            "args",
            obj(vec![("name", Value::String("pctl-prof".into()))]),
        ),
    ]));
    for rec in spans {
        events.push(obj(vec![
            ("name", Value::String(rec.path.clone())),
            ("cat", Value::String("prof".into())),
            ("ph", Value::String("X".into())),
            ("ts", Value::Float(rec.start_ns as f64 / 1e3)),
            ("dur", Value::Float(rec.dur_ns as f64 / 1e3)),
            ("pid", Value::UInt(1)),
            ("tid", Value::UInt(u64::from(rec.lane))),
        ]));
    }
    let doc = obj(vec![("traceEvents", Value::Array(events))]);
    serde_json::to_string(&doc).expect("trace JSON serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiler state is process-global, so the unit tests serialize on one
    /// lock instead of fighting over `reset()`.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = test_lock();
        set_enabled(false);
        reset();
        {
            let _sp = span("never");
        }
        let r = report();
        assert!(r.phases.is_empty());
        assert_eq!(r.span_count(), 0);
        set_gauge("never", 7);
        assert!(report().gauges.is_empty());
    }

    #[test]
    fn nested_spans_attribute_hierarchically() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
            }
        }
        set_enabled(false);
        let r = report();
        let outer = r.phases.get("outer").expect("outer recorded");
        let inner = r.phases.get("outer/inner").expect("nested path key");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(!r.phases.contains_key("inner"), "no flat key for nested");
        assert!(
            outer.total_ns >= inner.total_ns,
            "parent total covers children: {r:?}"
        );
        assert!(
            outer.self_ns <= outer.total_ns,
            "self time excludes children"
        );
        assert_eq!(r.span_count(), 4);
        reset();
    }

    #[test]
    fn gauges_last_write_wins() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        set_gauge("allocated_words", 10);
        set_gauge("allocated_words", 24);
        set_enabled(false);
        assert_eq!(report().gauges.get("allocated_words"), Some(&24));
        reset();
    }

    #[test]
    fn chrome_export_is_valid_trace_json() {
        let recs = vec![
            SpanRecord {
                path: "a".into(),
                lane: 0,
                start_ns: 1000,
                dur_ns: 5000,
            },
            SpanRecord {
                path: "a/b".into(),
                lane: 0,
                start_ns: 2000,
                dur_ns: 1000,
            },
        ];
        let json = chrome_trace_of(&recs);
        let doc: serde_json::Value = serde_json::from_str(&json).expect("parses");
        let field = |v: &serde_json::Value, key: &str| -> Option<serde_json::Value> {
            v.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
        };
        let events = field(&doc, "traceEvents").expect("traceEvents key");
        let events = events.as_array().expect("traceEvents array");
        assert_eq!(events.len(), 3, "metadata + 2 spans");
        let phases: Vec<String> = events
            .iter()
            .filter_map(|e| field(e, "ph")?.as_str().map(str::to_owned))
            .collect();
        assert_eq!(phases, vec!["M", "X", "X"]);
    }

    #[test]
    fn disabled_span_cost_is_tiny() {
        let _g = test_lock();
        set_enabled(false);
        let ns = disabled_span_cost_ns(10_000);
        // Generous bound: one atomic load should be well under a µs even
        // on a loaded CI machine.
        assert!(ns < 1000.0, "disabled span cost {ns} ns/call");
    }

    #[test]
    fn report_render_mentions_phases_and_gauges() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        {
            let _sp = span("render_me");
        }
        set_gauge("g1", 5);
        set_enabled(false);
        let text = report().render();
        assert!(text.contains("render_me"), "{text}");
        assert!(text.contains("gauge g1 = 5"), "{text}");
        reset();
    }
}
