//! Property-based cross-validation of the computation-store fast paths
//! against the layer-local reference implementations they replaced.
//!
//! The store (`pctl_deposet::store`) is now the single home of the Lemma 2
//! overlap primitives; these tests pin it to the exponential brute-force
//! searcher kept in `pctl_core::overlap` and to the engine built on top.

use pctl_core::offline::{OfflineOptions, SelectPolicy};
use pctl_core::overlap::{find_overlap_brute, is_overlapping};
use pctl_core::PredicateEngine;
use pctl_deposet::generator::{random_deposet, RandomConfig};
use pctl_deposet::{store, DisjunctivePredicate, FalseIntervals};
use proptest::prelude::*;

/// Small universes: `find_overlap_brute` is O(pⁿ·n²).
fn arb_config() -> impl Strategy<Value = (RandomConfig, u64)> {
    (1usize..5, 0usize..24, 0u64..1_000_000).prop_map(|(n, events, seed)| {
        (
            RandomConfig {
                processes: n,
                events,
                send_prob: 0.4,
                flip_prob: 0.4,
            },
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store's front-advance `find_overlap` and the brute-force
    /// odometer agree on the *verdict* for every random computation, and
    /// any witness either returns is a genuinely overlapping set.
    #[test]
    fn store_overlap_search_matches_brute_force((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let pred = DisjunctivePredicate::at_least_one(dep.process_count(), "ok");
        let iv = FalseIntervals::extract(&dep, &pred);
        let fast = store::find_overlap(&dep, &iv);
        let brute = find_overlap_brute(&dep, &iv);
        prop_assert_eq!(fast.is_some(), brute.is_some(),
            "store and brute-force disagree on overlap existence");
        if let Some(w) = &fast {
            prop_assert!(is_overlapping(&dep, w), "fast witness does not overlap");
        }
        if let Some(w) = &brute {
            prop_assert!(store::set_overlaps(&dep, w), "brute witness rejected by store");
        }
    }

    /// Engine-level duality on the same store: control synthesis fails
    /// exactly when an overlapping set exists (Lemma 2 under the
    /// enforceable semantics), for every random computation.
    #[test]
    fn engine_infeasibility_is_exactly_overlap((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let pred = DisjunctivePredicate::at_least_one(dep.process_count(), "ok");
        let engine = PredicateEngine::new(&dep, pred);
        let res = engine.control(OfflineOptions {
            policy: SelectPolicy::First,
            ..OfflineOptions::default()
        });
        let witness = engine.infeasibility_witness();
        prop_assert_eq!(res.is_err(), witness.is_some(),
            "control verdict and overlap witness must be dual");
        if let Some(w) = &witness {
            prop_assert!(is_overlapping(&dep, w));
        }
    }
}
