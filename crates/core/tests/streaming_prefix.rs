//! Prefix-equivalence of the incremental session store: after **every
//! single append**, the growing store is bit-identical to a fresh batch
//! build of the same prefix.
//!
//! The batch reference is [`SessionStore::snapshot`] → `Deposet::from_parts`,
//! which re-runs the full offline pipeline from raw states/events/messages —
//! topological sort and batch Fidge–Mattern clock DP — independently of the
//! incremental per-append clock maintenance, plus `IntervalIndex::build`,
//! which re-evaluates the predicate on every state and re-scans the truth
//! columns. Compared at every prefix: clock rows, `precedes()` over all
//! state pairs, truth columns, false intervals, and the engine verdicts
//! (detect / control / infeasibility witness). The final prefix is also
//! compared against the *original* generator-built deposet, pinning the
//! linearizer itself.

use pctl_core::offline::OfflineOptions;
use pctl_core::{PredicateEngine, StreamEngine};
use pctl_deposet::generator::{random_deposet, RandomConfig};
use pctl_deposet::{
    linearize, CausalStore, Deposet, DisjunctivePredicate, IntervalIndex, LocalPredicate,
    PredicateClass, ProcessId, RegularPredicate, StateId,
};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = (RandomConfig, u64)> {
    (1usize..4, 0usize..20, 0u64..1_000_000).prop_map(|(n, events, seed)| {
        (
            RandomConfig {
                processes: n,
                events,
                send_prob: 0.4,
                flip_prob: 0.4,
            },
            seed,
        )
    })
}

fn all_state_ids<C: CausalStore + ?Sized>(c: &C) -> Vec<StateId> {
    (0..c.process_count())
        .flat_map(|p| (0..c.len_of(ProcessId(p as u32)) as u32).map(move |k| StateId::new(p, k)))
        .collect()
}

/// Clocks, precedes, truths, intervals, and engine verdicts of the growing
/// store versus a fresh batch build over the same states/events.
fn assert_prefix_equivalent(stream: &mut StreamEngine, batch: &Deposet, ctx: &str) {
    let store = stream.store();
    let pred = stream.predicate();
    assert_eq!(store.process_count(), batch.process_count(), "{ctx}");
    let ids = all_state_ids(store);
    assert_eq!(ids, all_state_ids(batch), "{ctx}");
    for &s in &ids {
        assert_eq!(
            store.clock(s).entries(),
            batch.clock(s).entries(),
            "{ctx}: clock of {s:?} diverged from batch Fidge–Mattern"
        );
    }
    for &s in &ids {
        for &t in &ids {
            assert_eq!(
                store.precedes(s, t),
                batch.precedes(s, t),
                "{ctx}: precedes({s:?}, {t:?})"
            );
        }
    }
    let index = IntervalIndex::build(batch, &pred);
    for p in 0..store.process_count() {
        let p = ProcessId(p as u32);
        assert_eq!(
            store.truths_of(p),
            index.truths_of(p),
            "{ctx}: truth column of {p:?}"
        );
    }
    assert_eq!(store.intervals(), index.intervals(), "{ctx}: intervals");

    let eng = PredicateEngine::new(batch, pred);
    let opts = OfflineOptions::default();
    assert_eq!(
        stream.detect_violation(),
        eng.detect_violation(),
        "{ctx}: detect"
    );
    assert_eq!(stream.control(opts), eng.control(opts), "{ctx}: control");
    assert_eq!(
        stream.infeasibility_witness(),
        eng.infeasibility_witness(),
        "{ctx}: infeasibility witness"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Append one event at a time; after each, the store matches a fresh
    /// batch rebuild of the prefix bit for bit.
    #[test]
    fn incremental_append_equals_batch_rebuild_at_every_prefix((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let pred = DisjunctivePredicate::at_least_one(dep.process_count(), "ok");
        let (init, ops) = linearize(&dep);
        let mut stream = StreamEngine::new_with_init(pred.locals().to_vec(), &init);
        let snap0 = stream.snapshot();
        assert_prefix_equivalent(&mut stream, &snap0, "prefix 0");
        for (k, op) in ops.iter().enumerate() {
            stream.apply(op).unwrap();
            let snap = stream.snapshot();
            assert_prefix_equivalent(&mut stream, &snap, &format!("prefix {}", k + 1));
        }
        // The fully-replayed store equals the original generator output:
        // every message is delivered, so the snapshot demotes nothing.
        prop_assert_eq!(stream.store().in_flight(), 0);
        assert_prefix_equivalent(&mut stream, &dep, "full replay vs original");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Query memoization: repeating a query between appends answers from
    /// the cache (hit counter advances, verdicts unchanged), and any append
    /// invalidates it (the next query recomputes against a fresh batch
    /// rebuild — the memoized path can never go stale).
    #[test]
    fn query_cache_hits_between_appends_and_invalidates_on_append((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let pred = DisjunctivePredicate::at_least_one(dep.process_count(), "ok");
        let (init, ops) = linearize(&dep);
        let mut stream = StreamEngine::new_with_init(pred.locals().to_vec(), &init);
        let opts = OfflineOptions::default();
        for (k, op) in ops.iter().enumerate() {
            stream.apply(op).unwrap();
            let d1 = stream.detect_violation();
            let c1 = stream.control(opts);
            let w1 = stream.infeasibility_witness();
            let hits_before = stream.cache_hits();
            // Same prefix, same queries: all three must be cache hits with
            // identical answers.
            prop_assert_eq!(stream.detect_violation(), d1.clone(), "prefix {}", k + 1);
            prop_assert_eq!(stream.control(opts), c1.clone(), "prefix {}", k + 1);
            prop_assert_eq!(stream.infeasibility_witness(), w1.clone(), "prefix {}", k + 1);
            prop_assert_eq!(stream.cache_hits(), hits_before + 3, "prefix {}", k + 1);
            // And the (possibly cached) answers equal a fresh batch build.
            let snap = stream.snapshot();
            let eng = PredicateEngine::new(&snap, stream.predicate());
            prop_assert_eq!(d1, eng.detect_violation(), "prefix {}", k + 1);
            prop_assert_eq!(c1, eng.control(opts), "prefix {}", k + 1);
            prop_assert_eq!(w1, eng.infeasibility_witness(), "prefix {}", k + 1);
        }
    }

    /// Regular-class streaming: after every append, detect/control answer
    /// identically to a fresh batch engine with slicing on, built over the
    /// same prefix. Channel-free violations are checked at every prefix;
    /// the batch snapshot demotes in-flight sends, so this stays an exact
    /// equivalence.
    #[test]
    fn regular_class_stream_matches_batch_slicing_at_every_prefix((cfg, seed) in arb_config()) {
        let dep = random_deposet(&cfg, seed);
        let n = dep.process_count();
        // Subset conjunction: every process with an even id must have `ok`.
        let violation = RegularPredicate::And(
            (0..n)
                .filter(|i| i % 2 == 0)
                .map(|i| RegularPredicate::local(i, LocalPredicate::var("ok")))
                .collect(),
        );
        let class = PredicateClass::regular(n as u32, violation);
        let (init, ops) = linearize(&dep);
        let mut stream = StreamEngine::for_class(class.clone(), Some(&init)).unwrap();
        let opts = OfflineOptions::default();
        for (k, op) in ops.iter().enumerate() {
            stream.apply(op).unwrap();
            let snap = stream.snapshot();
            let eng = PredicateEngine::for_class(&snap, &class).unwrap();
            prop_assert_eq!(
                stream.detect_violation(),
                eng.detect_violation(),
                "prefix {}: regular detect", k + 1
            );
            prop_assert_eq!(
                stream.control(opts),
                eng.control(opts),
                "prefix {}: regular control", k + 1
            );
            prop_assert_eq!(
                stream.infeasibility_witness(),
                eng.infeasibility_witness(),
                "prefix {}: regular witness", k + 1
            );
            if let Ok(rel) = stream.control(opts) {
                prop_assert!(stream.verify(&rel, 500_000).is_ok(), "prefix {}", k + 1);
            }
        }
    }
}
