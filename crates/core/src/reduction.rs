//! The SAT → SGSD reduction (paper Figure 1, proof of Lemma 1).
//!
//! For a CNF formula `b` over variables `x₀ … x_{m-1}`:
//!
//! * each variable `x_k` becomes a process with two states — `x = true`
//!   then `x = false` (a global state's choice of position encodes an
//!   assignment);
//! * one extra process `x_m` has three states — `true`, `false`, `true`;
//! * the SGSD predicate is `B = b ∨ x_m`.
//!
//! Every global sequence drives `x_m` through its middle `false` state; at
//! that instant `B` forces `b` to hold under the assignment encoded by the
//! other processes. Conversely, for a satisfying assignment `A`, the
//! sequence: move exactly the `A(x)=false` processes down, dip `x_m` to
//! false and back, then move the rest, satisfies `B` throughout. Hence
//! `SGSD(reduce(b)) ⇔ SAT(b)`, and SGSD (and with it off-line predicate
//! control, Theorem 1) is NP-hard.

use crate::sat::Cnf;
use pctl_deposet::{
    Deposet, DeposetBuilder, GlobalPredicate, GlobalSequence, GlobalState, LocalPredicate,
};

/// Output of the reduction: the gadget computation and the predicate to
/// hand to SGSD.
pub struct SgsdInstance {
    /// The Figure-1 deposet (`m + 1` processes, no messages).
    pub deposet: Deposet,
    /// `B = b ∨ x_m`.
    pub predicate: GlobalPredicate,
}

/// Build the Figure-1 gadget for `cnf`.
pub fn reduce_sat_to_sgsd(cnf: &Cnf) -> SgsdInstance {
    let m = cnf.num_vars;
    let mut b = DeposetBuilder::new(m + 1);
    for v in 0..m {
        b.init_vars(v, &[("x", 1)]);
        b.internal(v, &[("x", 0)]);
    }
    b.init_vars(m, &[("x", 1)]);
    b.internal(m, &[("x", 0)]);
    b.internal(m, &[("x", 1)]);
    let deposet = b.finish().expect("gadget is a valid deposet");

    let clause_preds: Vec<GlobalPredicate> = cnf
        .clauses
        .iter()
        .map(|clause| {
            GlobalPredicate::Or(
                clause
                    .iter()
                    .map(|l| {
                        let var = LocalPredicate::var("x");
                        let local = if l.positive { var } else { var.negated() };
                        GlobalPredicate::local(l.var, local)
                    })
                    .collect(),
            )
        })
        .collect();
    let formula = GlobalPredicate::And(clause_preds);
    let predicate = GlobalPredicate::Or(vec![
        formula,
        GlobalPredicate::local(m, LocalPredicate::var("x")),
    ]);
    SgsdInstance { deposet, predicate }
}

/// Read the variable assignment encoded by a global state of the gadget:
/// process `k` at its first state ⇒ `x_k = true`.
pub fn decode_assignment(g: &GlobalState, num_vars: usize) -> Vec<bool> {
    (0..num_vars).map(|v| g.indices()[v] == 0).collect()
}

/// Extract a satisfying assignment of the original formula from a
/// satisfying global sequence of the gadget: the assignment at the moment
/// `x_m` is false.
pub fn extract_assignment(seq: &GlobalSequence, num_vars: usize) -> Option<Vec<bool>> {
    seq.states()
        .iter()
        .find(|g| g.indices()[num_vars] == 1)
        .map(|g| decode_assignment(g, num_vars))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{dpll, satisfiable, Cnf, Lit};
    use crate::sgsd::{sgsd, SgsdOutcome};

    #[test]
    fn gadget_shape_matches_figure_1() {
        let cnf = Cnf::random_ksat(4, 6, 3, 0);
        let inst = reduce_sat_to_sgsd(&cnf);
        assert_eq!(inst.deposet.process_count(), 5);
        for v in 0..4usize {
            assert_eq!(inst.deposet.len_of(v.into()), 2);
        }
        assert_eq!(inst.deposet.len_of(4usize.into()), 3);
        assert!(inst.deposet.messages().is_empty());
    }

    #[test]
    fn satisfiable_formula_gives_satisfiable_sgsd_with_model() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1): model x1 = true.
        let cnf = Cnf {
            num_vars: 2,
            clauses: vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::pos(1)],
            ],
        };
        let inst = reduce_sat_to_sgsd(&cnf);
        let out = sgsd(&inst.deposet, &inst.predicate, 1_000_000).unwrap();
        let SgsdOutcome::Satisfiable(seq) = out else {
            panic!("expected satisfiable")
        };
        let a = extract_assignment(&seq, 2).expect("x_m dips false somewhere");
        assert!(cnf.eval(&a), "extracted assignment must be a model");
    }

    #[test]
    fn unsatisfiable_formula_gives_unsatisfiable_sgsd() {
        // x0 ∧ ¬x0.
        let cnf = Cnf {
            num_vars: 1,
            clauses: vec![vec![Lit::pos(0)], vec![Lit::neg(0)]],
        };
        let inst = reduce_sat_to_sgsd(&cnf);
        assert!(!sgsd(&inst.deposet, &inst.predicate, 1_000_000)
            .unwrap()
            .is_satisfiable());
    }

    #[test]
    fn reduction_agrees_with_dpll_on_random_instances() {
        for seed in 0..25 {
            let cnf = Cnf::random_ksat(5, 21, 3, seed);
            let inst = reduce_sat_to_sgsd(&cnf);
            let sgsd_sat = sgsd(&inst.deposet, &inst.predicate, 5_000_000)
                .unwrap()
                .is_satisfiable();
            assert_eq!(
                sgsd_sat,
                satisfiable(&cnf),
                "reduction disagrees with DPLL on seed {seed}: {cnf}"
            );
        }
    }

    #[test]
    fn extracted_assignments_match_some_model_structure() {
        for seed in 0..10 {
            let cnf = Cnf::random_ksat(4, 10, 3, seed);
            let inst = reduce_sat_to_sgsd(&cnf);
            if let SgsdOutcome::Satisfiable(seq) =
                sgsd(&inst.deposet, &inst.predicate, 5_000_000).unwrap()
            {
                let a = extract_assignment(&seq, 4).unwrap();
                assert!(cnf.eval(&a));
                // DPLL must agree the formula is satisfiable.
                assert!(dpll(&cnf).is_some());
            }
        }
    }
}
