//! Off-line control beyond disjunctive predicates (paper Conclusions).
//!
//! The paper's closing discussion reports a solution for *locally
//! independent* global predicates — arbitrary boolean predicates whose
//! local-predicate false-intervals are **mutually separated** (pairwise
//! causally ordered, never concurrent). This module implements the natural
//! compositional route to that class:
//!
//! a general safety property is written as a **conjunction of disjunctive
//! clauses** (CNF over local predicates — e.g. several pairwise mutual
//! exclusions, or system-wide deadlock avoidance constraints); each clause
//! is controlled independently with the Figure 2 algorithm; and the
//! per-clause chains are merged. The merge is sound iff the union does not
//! interfere with causality, which is verified — and the mutual-separation
//! condition is a checkable *sufficient* condition for merge success, also
//! provided here.
//!
//! When the merged relation interferes, the instance is reported as
//! [`CnfControlError::Conflict`] (this composition is a sound but
//! incomplete procedure for general CNF control — completeness for
//! arbitrary predicates is NP-hard by Theorem 1, so some incompleteness is
//! inevitable for a polynomial method).

use crate::control::{ControlRelation, ControlledDeposet};
use crate::offline::{control_disjunctive, Infeasible, OfflineOptions};
use pctl_deposet::{
    Deposet, DisjunctivePredicate, FalseIntervals, GlobalPredicate, LocalPredicate,
};
use std::fmt;

/// A conjunction of disjunctive clauses over local predicates. Clause `c`
/// must assign one local predicate per process (use
/// [`LocalPredicate::False`] for processes a clause does not constrain — a
/// constant-false disjunct contributes nothing to the clause, whereas a
/// constant-true one would make it vacuous).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CnfPredicate {
    clauses: Vec<DisjunctivePredicate>,
}

impl CnfPredicate {
    /// Build from clauses (all must share the same arity).
    pub fn new(clauses: Vec<DisjunctivePredicate>) -> Self {
        if let Some(first) = clauses.first() {
            assert!(clauses.iter().all(|c| c.arity() == first.arity()));
        }
        CnfPredicate { clauses }
    }

    /// Pairwise mutual exclusion between processes `a` and `b` over
    /// boolean variable `var` in an `n`-process system:
    /// `¬var_a ∨ ¬var_b`.
    pub fn pairwise_mutex(n: usize, a: usize, b: usize, var: &str) -> DisjunctivePredicate {
        DisjunctivePredicate::new(
            (0..n)
                .map(|i| {
                    if i == a || i == b {
                        LocalPredicate::not_var(var)
                    } else {
                        LocalPredicate::False
                    }
                })
                .collect(),
        )
    }

    /// The clauses.
    pub fn clauses(&self) -> &[DisjunctivePredicate] {
        &self.clauses
    }

    /// Evaluate on a global state: all clauses must hold.
    pub fn eval(&self, dep: &Deposet, g: &pctl_deposet::GlobalState) -> bool {
        self.clauses.iter().all(|c| c.eval(dep, g))
    }

    /// Lower to a [`GlobalPredicate`] (for SGSD cross-checks).
    pub fn to_global(&self) -> GlobalPredicate {
        GlobalPredicate::And(self.clauses.iter().map(|c| c.to_global()).collect())
    }
}

/// Why CNF control failed.
#[derive(Debug)]
pub enum CnfControlError {
    /// Some clause alone is infeasible (overlap witness attached).
    ClauseInfeasible {
        /// Index of the infeasible clause.
        clause: usize,
        /// Its overlap witness.
        witness: Infeasible,
    },
    /// Each clause is controllable but the merged chains interfere with
    /// causality (or with each other).
    Conflict {
        /// The merged relation that failed.
        merged: ControlRelation,
    },
}

impl fmt::Display for CnfControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CnfControlError::ClauseInfeasible { clause, witness } => {
                write!(f, "clause {clause} infeasible: {witness}")
            }
            CnfControlError::Conflict { merged } => {
                write!(f, "per-clause controls interfere when merged: {merged}")
            }
        }
    }
}

impl std::error::Error for CnfControlError {}

/// Control a conjunction of disjunctive clauses by per-clause synthesis and
/// merge (see module docs). On success the returned relation provably makes
/// every clause — hence the conjunction — hold on every global sequence.
pub fn control_cnf(
    dep: &Deposet,
    pred: &CnfPredicate,
    opts: OfflineOptions,
) -> Result<ControlRelation, CnfControlError> {
    let mut merged = ControlRelation::empty();
    for (ci, clause) in pred.clauses().iter().enumerate() {
        let rel = control_disjunctive(dep, clause, opts).map_err(|witness| {
            CnfControlError::ClauseInfeasible {
                clause: ci,
                witness,
            }
        })?;
        merged = merged.merged(&rel);
    }
    // Soundness gate: the union must still be a partial order, and each
    // clause must still hold under the union (chains from one clause can
    // invalidate another clause's chain argument only by removing cuts, so
    // holding per-clause under the merged order is implied — but we check
    // interference explicitly).
    match ControlledDeposet::new(dep, merged.clone()) {
        Ok(_) => Ok(merged),
        Err(_) => Err(CnfControlError::Conflict { merged }),
    }
}

/// The paper's *mutual separation* condition: every two false intervals of
/// different processes (w.r.t. the given per-process local predicates) are
/// causally ordered — `I.hi → J.lo` or `J.hi → I.lo` — never concurrent.
///
/// When it holds for the union of all clauses' false intervals, each clause
/// needs no control at all w.r.t. the others' timing and `control_cnf`
/// cannot conflict; it is the checkable sufficient condition for the
/// "locally independent" class.
pub fn mutually_separated(dep: &Deposet, locals: &[LocalPredicate]) -> bool {
    let iv = FalseIntervals::extract_each(dep, locals);
    let n = dep.process_count();
    for i in 0..n {
        for j in (i + 1)..n {
            for a in iv.of(pctl_deposet::ProcessId(i as u32)) {
                for b in iv.of(pctl_deposet::ProcessId(j as u32)) {
                    let ab = dep.precedes(a.hi_state(), b.lo_state());
                    let ba = dep.precedes(b.hi_state(), a.lo_state());
                    if !(ab || ba) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_deposet::{DeposetBuilder, GlobalState};

    /// Three processes, each with one critical section, pairwise-overlapping
    /// in the trace.
    fn three_cs() -> Deposet {
        let mut b = DeposetBuilder::new(3);
        for p in 0..3 {
            b.init_vars(p, &[("cs", 0)]);
            b.internal(p, &[("cs", 1)]);
            b.internal(p, &[("cs", 0)]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn two_pairwise_mutexes_compose() {
        let dep = three_cs();
        // ¬cs₀∨¬cs₁ and ¬cs₁∨¬cs₂ (P0–P2 may overlap freely).
        let pred = CnfPredicate::new(vec![
            CnfPredicate::pairwise_mutex(3, 0, 1, "cs"),
            CnfPredicate::pairwise_mutex(3, 1, 2, "cs"),
        ]);
        let rel = control_cnf(&dep, &pred, OfflineOptions::default()).expect("composable");
        let c = ControlledDeposet::new(&dep, rel).unwrap();
        for g in c.consistent_global_states(100_000).unwrap() {
            assert!(pred.eval(&dep, &g), "violated at {g:?}");
        }
    }

    #[test]
    fn full_triple_mutex_via_cnf() {
        // 1-mutex (at most one in CS) = all three pairwise clauses.
        let dep = three_cs();
        let pred = CnfPredicate::new(vec![
            CnfPredicate::pairwise_mutex(3, 0, 1, "cs"),
            CnfPredicate::pairwise_mutex(3, 0, 2, "cs"),
            CnfPredicate::pairwise_mutex(3, 1, 2, "cs"),
        ]);
        match control_cnf(&dep, &pred, OfflineOptions::default()) {
            Ok(rel) => {
                let c = ControlledDeposet::new(&dep, rel).unwrap();
                for g in c.consistent_global_states(100_000).unwrap() {
                    assert!(pred.eval(&dep, &g));
                }
            }
            Err(CnfControlError::Conflict { .. }) => {
                // Sound-but-incomplete composition may conflict; acceptable
                // per module docs — but it must never return a bad relation.
            }
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }

    #[test]
    fn clause_infeasibility_is_attributed() {
        // P0 and P1 in CS for their whole execution: ¬cs₀∨¬cs₁ infeasible.
        let mut b = DeposetBuilder::new(2);
        for p in 0..2 {
            b.init_vars(p, &[("cs", 1)]);
            b.internal(p, &[]);
        }
        let dep = b.finish().unwrap();
        let pred = CnfPredicate::new(vec![CnfPredicate::pairwise_mutex(2, 0, 1, "cs")]);
        match control_cnf(&dep, &pred, OfflineOptions::default()) {
            Err(CnfControlError::ClauseInfeasible { clause: 0, .. }) => {}
            other => panic!("expected clause infeasibility, got {other:?}"),
        }
    }

    #[test]
    fn mutual_separation_detects_ordering() {
        // Causally ordered CSs: P0's section strictly before P1's (message).
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("cs", 0)]);
        b.init_vars(1, &[("cs", 0)]);
        b.internal(0, &[("cs", 1)]);
        b.internal(0, &[("cs", 0)]);
        let t = b.send(0, "done");
        b.recv(1, t, &[]);
        b.internal(1, &[("cs", 1)]);
        b.internal(1, &[("cs", 0)]);
        let dep = b.finish().unwrap();
        let locals = vec![LocalPredicate::not_var("cs"), LocalPredicate::not_var("cs")];
        assert!(mutually_separated(&dep, &locals));
        // And the unordered version is not separated.
        let dep2 = three_cs();
        let locals3 = vec![
            LocalPredicate::not_var("cs"),
            LocalPredicate::not_var("cs"),
            LocalPredicate::not_var("cs"),
        ];
        assert!(!mutually_separated(&dep2, &locals3));
    }

    #[test]
    fn separated_instances_need_no_control_and_never_conflict() {
        // When mutually separated, each clause's algorithm output verifies
        // and the merge is conflict-free.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("cs", 0)]);
        b.init_vars(1, &[("cs", 0)]);
        b.internal(0, &[("cs", 1)]);
        b.internal(0, &[("cs", 0)]);
        let t = b.send(0, "done");
        b.recv(1, t, &[]);
        b.internal(1, &[("cs", 1)]);
        b.internal(1, &[("cs", 0)]);
        let dep = b.finish().unwrap();
        let pred = CnfPredicate::new(vec![CnfPredicate::pairwise_mutex(2, 0, 1, "cs")]);
        let rel = control_cnf(&dep, &pred, OfflineOptions::default()).unwrap();
        let c = ControlledDeposet::new(&dep, rel).unwrap();
        for g in c.consistent_global_states(100_000).unwrap() {
            assert!(pred.eval(&dep, &g));
        }
    }

    #[test]
    fn cnf_eval_and_lowering() {
        let dep = three_cs();
        let pred = CnfPredicate::new(vec![
            CnfPredicate::pairwise_mutex(3, 0, 1, "cs"),
            CnfPredicate::pairwise_mutex(3, 1, 2, "cs"),
        ]);
        let bad = GlobalState::from_indices(vec![1, 1, 0]);
        assert!(!pred.eval(&dep, &bad));
        assert!(!pred.to_global().eval(&dep, &bad));
        let ok = GlobalState::from_indices(vec![1, 0, 1]);
        assert!(pred.eval(&dep, &ok));
        assert!(pred.to_global().eval(&dep, &ok));
    }
}
