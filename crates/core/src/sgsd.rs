//! Satisfying Global Sequence Detection (SGSD) — paper Section 4.
//!
//! *Given a deposet and a global predicate `B`, does some global sequence
//! satisfy `B` (i.e. every global state along it satisfies `B`)?*
//!
//! SGSD is NP-complete (paper Lemma 1), and deciding whether a satisfying
//! control strategy exists is equivalent to it: a satisfying strategy can
//! be read off a satisfying sequence (allow exactly that sequence) and vice
//! versa (simulate the strategy). So this exhaustive solver doubles as the
//! ground-truth oracle for the off-line control algorithm's feasibility
//! answers, and as the expensive half of the NP-hardness experiment (E1).

use pctl_deposet::lattice::LatticeBudgetExceeded;
use pctl_deposet::sequences::find_satisfying_sequence;
use pctl_deposet::{Deposet, GlobalPredicate, GlobalSequence};

/// Outcome of the SGSD search.
#[derive(Debug)]
pub enum SgsdOutcome {
    /// A satisfying sequence exists; here is one.
    Satisfiable(GlobalSequence),
    /// Provably no satisfying sequence exists.
    Unsatisfiable,
}

impl SgsdOutcome {
    /// Whether a satisfying sequence was found.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, SgsdOutcome::Satisfiable(_))
    }
}

/// Decide SGSD for `pred` on `dep`, visiting at most `limit` global states
/// (the search is exponential in the worst case — inherent, per Lemma 1).
pub fn sgsd(
    dep: &Deposet,
    pred: &GlobalPredicate,
    limit: usize,
) -> Result<SgsdOutcome, LatticeBudgetExceeded> {
    match find_satisfying_sequence(dep, limit, |d, g| pred.eval(d, g))? {
        Some(seq) => Ok(SgsdOutcome::Satisfiable(seq)),
        None => Ok(SgsdOutcome::Unsatisfiable),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_deposet::{DeposetBuilder, DisjunctivePredicate, LocalPredicate};

    #[test]
    fn mutex_trace_has_a_satisfying_sequence() {
        // Two overlapping critical sections: a sequence avoiding ⟨cs,cs⟩
        // exists (serialize them).
        let mut b = DeposetBuilder::new(2);
        for p in 0..2 {
            b.init_vars(p, &[("cs", 0)]);
            b.internal(p, &[("cs", 1)]);
            b.internal(p, &[("cs", 0)]);
        }
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one_not(2, "cs").to_global();
        let out = sgsd(&dep, &pred, 100_000).unwrap();
        let SgsdOutcome::Satisfiable(seq) = out else {
            panic!("expected satisfiable")
        };
        assert_eq!(seq.validate(&dep), Ok(()));
        assert!(seq.satisfies(&dep, |d, g| pred.eval(d, g)));
    }

    #[test]
    fn all_false_processes_are_unsatisfiable() {
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[]);
        b.internal(1, &[]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "up").to_global();
        assert!(!sgsd(&dep, &pred, 100_000).unwrap().is_satisfiable());
    }

    #[test]
    fn subset_step_needed_for_satisfaction() {
        // The "swap" instance: B = exactly-one-token, expressible as a
        // boolean combination of local predicates.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("tok", 1)]);
        b.internal(0, &[("tok", 0)]);
        b.internal(1, &[("tok", 1)]);
        let dep = b.finish().unwrap();
        let t0 = GlobalPredicate::local(0usize, LocalPredicate::var("tok"));
        let t1 = GlobalPredicate::local(1usize, LocalPredicate::var("tok"));
        let exactly_one = GlobalPredicate::And(vec![
            GlobalPredicate::Or(vec![t0.clone(), t1.clone()]),
            GlobalPredicate::Not(Box::new(GlobalPredicate::And(vec![t0, t1]))),
        ]);
        let out = sgsd(&dep, &exactly_one, 100_000).unwrap();
        let SgsdOutcome::Satisfiable(seq) = out else {
            panic!("needs the diagonal step")
        };
        assert_eq!(seq.states().len(), 2);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut b = DeposetBuilder::new(2);
        for _ in 0..8 {
            b.internal(0, &[]);
            b.internal(1, &[]);
        }
        let dep = b.finish().unwrap();
        let pred = GlobalPredicate::Const(true);
        assert!(sgsd(&dep, &pred, 2).is_err());
    }
}
