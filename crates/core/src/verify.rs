//! Executable verification of control strategies.
//!
//! The paper's correctness proofs (Theorem 2 and the lemmas deferred to the
//! companion TR \[12]) are reproduced here as machine-checkable evidence:
//!
//! * [`verify_disjunctive`] — *soundness*: the synthesized relation does
//!   not interfere with causality, and every consistent global state of the
//!   controlled computation satisfies `B`. Since every global sequence
//!   moves through consistent global states only, and every consistent
//!   global state lies on some global sequence, this is exactly "the
//!   controlled deposet satisfies `B`".
//! * [`chain_structure`] — the structural invariant behind the proof: the
//!   output is a chain anchored at `⊥` or at crossed-interval endpoints,
//!   with every arrow pointing back into a false interval (or `⊤`).
//! * [`agrees_with_oracle`] — *completeness* cross-check on small
//!   instances: the algorithm answers "infeasible" exactly when no
//!   satisfying interleaving exists (the enforceable semantics; see
//!   `crate::overlap`'s module docs).
//! * [`sweep_faulty_run`] — post-run safety audit for *faulty* executions
//!   of the on-line protocol ([`crate::online::ft`]): searches the traced
//!   deposet for consistent cuts where the disjunction `B = ∨ᵢ lᵢ` has no
//!   witness, distinguishing cuts explainable by a crash (some process is
//!   down in them — the documented trade-off against the paper's
//!   reliable-channel model) from *clean* violations with every process
//!   up, which indicate a genuine protocol bug.

use crate::control::{ControlError, ControlRelation, ControlledDeposet};
use crate::offline::{control_disjunctive, OfflineOptions};
use pctl_deposet::lattice::LatticeBudgetExceeded;
use pctl_deposet::{Deposet, DisjunctivePredicate, GlobalState, LocalPredicate, ProcessId};
use std::fmt;

/// Verification failure.
#[derive(Debug)]
pub enum VerifyError {
    /// The relation cannot even be applied.
    Control(ControlError),
    /// The controlled lattice is too large to check exhaustively.
    Budget(LatticeBudgetExceeded),
    /// A consistent global state of the controlled computation violates the
    /// predicate.
    Violation {
        /// The offending global state.
        state: GlobalState,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Control(e) => write!(f, "control relation invalid: {e}"),
            VerifyError::Budget(e) => write!(f, "verification budget exceeded: {e}"),
            VerifyError::Violation { state } => {
                write!(f, "controlled global state {state} violates the predicate")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Exhaustively verify that `rel` makes `dep` satisfy the disjunctive
/// predicate `pred` (see module docs). `limit` bounds the number of
/// controlled-consistent global states visited.
pub fn verify_disjunctive(
    dep: &Deposet,
    pred: &DisjunctivePredicate,
    rel: &ControlRelation,
    limit: usize,
) -> Result<(), VerifyError> {
    let _prof = pctl_prof::span("verify_disjunctive");
    let c = ControlledDeposet::new(dep, rel.clone()).map_err(VerifyError::Control)?;
    for g in c
        .consistent_global_states(limit)
        .map_err(VerifyError::Budget)?
    {
        if !pred.eval(dep, &g) {
            return Err(VerifyError::Violation { state: g });
        }
    }
    Ok(())
}

/// Exhaustively verify that `rel` *prevents* the regular violation
/// `violation`: no consistent global state of the controlled computation
/// satisfies it. Dual framing to [`verify_disjunctive`] (which maintains
/// the good predicate); the slice-then-delegate pipeline produces `rel`
/// from the slice's frontier intervals, and this is the independent audit.
pub fn verify_regular(
    dep: &Deposet,
    violation: &pctl_deposet::RegularPredicate,
    rel: &ControlRelation,
    limit: usize,
) -> Result<(), VerifyError> {
    let _prof = pctl_prof::span("verify_regular");
    let c = ControlledDeposet::new(dep, rel.clone()).map_err(VerifyError::Control)?;
    for g in c
        .consistent_global_states(limit)
        .map_err(VerifyError::Budget)?
    {
        if violation.eval(dep, &g) {
            return Err(VerifyError::Violation { state: g });
        }
    }
    Ok(())
}

/// Structural facts about an algorithm output used in the paper's proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainStructure {
    /// Every arrow source is a valid chain anchor: `⊥ᵢ` with the local
    /// predicate true there, or the last (`hi`) state of a crossed false
    /// interval — i.e. a false state whose successor is true. (The
    /// algorithm anchors at `I.hi` rather than its successor; see
    /// `offline::Run::state_of`.)
    pub sources_anchor: bool,
    /// Every arrow target state falsifies its process's local predicate or
    /// is the final state `⊤` of its process.
    pub targets_false_or_top: bool,
    /// No arrow connects a process to itself.
    pub no_self_arrows: bool,
}

impl ChainStructure {
    /// All structural invariants hold.
    pub fn holds(&self) -> bool {
        self.sources_anchor && self.targets_false_or_top && self.no_self_arrows
    }
}

/// Check the chain-structure invariants of a control relation produced by
/// the off-line algorithm.
pub fn chain_structure(
    dep: &Deposet,
    pred: &DisjunctivePredicate,
    rel: &ControlRelation,
) -> ChainStructure {
    let mut s = ChainStructure {
        sources_anchor: true,
        targets_false_or_top: true,
        no_self_arrows: true,
    };
    for &(x, y) in rel.pairs() {
        let x_true = pred.local(x.process).eval(dep.state(x));
        let anchor_at_bottom = x == dep.bottom(x.process) && x_true;
        let succ = x.successor();
        let anchor_at_interval_end =
            !x_true && dep.contains(succ) && pred.local(x.process).eval(dep.state(succ));
        if !(anchor_at_bottom || anchor_at_interval_end) {
            s.sources_anchor = false;
        }
        let is_top = y == dep.top(y.process);
        if !is_top && pred.local(y.process).eval(dep.state(y)) {
            s.targets_false_or_top = false;
        }
        if x.process == y.process {
            s.no_self_arrows = false;
        }
    }
    s
}

/// Cross-check the off-line algorithm's feasibility answer against the
/// exhaustive *interleaving* oracle (the enforceable semantics — see
/// `crate::overlap`'s module docs). Returns `Ok(true)` when they agree.
pub fn agrees_with_oracle(
    dep: &Deposet,
    pred: &DisjunctivePredicate,
    opts: OfflineOptions,
    limit: usize,
) -> Result<bool, LatticeBudgetExceeded> {
    let algo_feasible = control_disjunctive(dep, pred, opts).is_ok();
    let p = pred.clone();
    let oracle = pctl_deposet::sequences::find_satisfying_interleaving(dep, limit, move |d, g| {
        p.eval(d, g)
    })?;
    Ok(algo_feasible == oracle.is_some())
}

/// A maximal run of consecutive local states during which one process was
/// down (crashed), read off the reserved trace variable `"down"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DownWindow {
    /// The crashed process.
    pub process: ProcessId,
    /// Index of its first down state.
    pub from: u32,
    /// Index of its first up state after the window; `None` if it never
    /// restarted.
    pub to: Option<u32>,
}

/// Result of [`sweep_faulty_run`]: where (if anywhere) the controlled
/// computation loses its witness for `B`, and which crash windows could
/// explain it.
#[derive(Clone, Debug)]
pub struct FaultSweepReport {
    /// A consistent cut in which no *up* process satisfies its local
    /// predicate — i.e. every process is either predicate-false or down.
    /// `None` means `B` held, witnessed by a live process, at every cut.
    pub unwitnessed_cut: Option<GlobalState>,
    /// A consistent cut in which every process is up yet predicate-false.
    /// This can never be blamed on a crash window; the hardened protocol
    /// must not produce one.
    pub clean_violation: Option<GlobalState>,
    /// All crash windows found in the trace, per process.
    pub down_windows: Vec<DownWindow>,
}

impl FaultSweepReport {
    /// `B` was witnessed by a live process at every consistent cut — the
    /// paper's guarantee held outright despite the injected faults. This is
    /// what loss/duplication/reordering-only runs must achieve.
    pub fn fully_safe(&self) -> bool {
        self.unwitnessed_cut.is_none() && self.clean_violation.is_none()
    }

    /// Every unwitnessed cut (if any) contains a crashed process — the
    /// bounded trade-off documented in DESIGN.md ("Deviations from Figure 3
    /// under faults"). Runs with crashes must achieve at least this.
    pub fn safe_modulo_crashes(&self) -> bool {
        self.clean_violation.is_none()
    }
}

/// Audit a traced run of the fault-tolerant on-line protocol
/// ([`crate::online::ft`]) after the fact.
///
/// `witness` is the local predicate `lᵢ` whose disjunction the controller
/// maintains (the same formula for every process — `var("ok")` for the
/// phased workload, `not_var("cs")` for mutual exclusion). The sweep runs
/// two conjunctive-predicate detections over the whole computation lattice
/// (`pctl_detect::possibly_conjunction`, the paper's *possibly* modality):
///
/// 1. **unwitnessed**: `∀i. ¬lᵢ ∨ downᵢ` — no up process witnesses `B`;
/// 2. **clean violation**: `∀i. ¬lᵢ ∧ ¬downᵢ` — all up, all false.
///
/// The second is a genuine safety bug in any run; the first is tolerated
/// exactly when a crash destroyed the anti-token (the cut then contains the
/// dead process), until the watchdog regenerates it.
///
/// The sweep makes a *single pass* over every local state: the witness
/// predicate is evaluated once and the reserved `"down"` flag read once per
/// state, and both detector candidate queues plus the crash windows are
/// derived from those two columns (the detectors then run on the queues via
/// [`pctl_detect::possibly_from_queues`], with no further predicate
/// evaluation). Per-process columns are independent, so the scan fans out
/// over [`pctl_deposet::par::ordered_map`] with a deterministic merge.
pub fn sweep_faulty_run(dep: &Deposet, witness: &LocalPredicate) -> FaultSweepReport {
    let _prof = pctl_prof::span("sweep_faulty_run");
    struct Column {
        unwitnessed: Vec<u32>,
        clean: Vec<u32>,
        windows: Vec<DownWindow>,
    }
    let procs: Vec<ProcessId> = dep.processes().collect();
    let columns: Vec<Column> = pctl_deposet::par::ordered_map(&procs, |_, &p| {
        let mut col = Column {
            unwitnessed: Vec::new(),
            clean: Vec::new(),
            windows: Vec::new(),
        };
        let mut open: Option<u32> = None;
        for (k, s) in dep.states_of(p).iter().enumerate() {
            let wit = witness.eval(s);
            let is_down = s.vars.get("down").unwrap_or(0) != 0;
            // Queue membership: ¬lᵢ ∨ downᵢ (unwitnessed), ¬lᵢ ∧ ¬downᵢ
            // (clean violation).
            if !wit || is_down {
                col.unwitnessed.push(k as u32);
            }
            if !wit && !is_down {
                col.clean.push(k as u32);
            }
            match (is_down, open) {
                (true, None) => open = Some(k as u32),
                (false, Some(from)) => {
                    col.windows.push(DownWindow {
                        process: p,
                        from,
                        to: Some(k as u32),
                    });
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(from) = open {
            col.windows.push(DownWindow {
                process: p,
                from,
                to: None,
            });
        }
        col
    });

    let mut unwitnessed_queues = Vec::with_capacity(columns.len());
    let mut clean_queues = Vec::with_capacity(columns.len());
    let mut down_windows = Vec::new();
    for c in columns {
        unwitnessed_queues.push(c.unwitnessed);
        clean_queues.push(c.clean);
        down_windows.extend(c.windows);
    }
    FaultSweepReport {
        unwitnessed_cut: pctl_detect::possibly_from_queues(dep, &unwitnessed_queues),
        clean_violation: pctl_detect::possibly_from_queues(dep, &clean_queues),
        down_windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_causality::StateId;
    use pctl_deposet::DeposetBuilder;

    fn mutex_dep() -> (Deposet, DisjunctivePredicate) {
        let mut b = DeposetBuilder::new(2);
        for p in 0..2 {
            b.init_vars(p, &[("cs", 0)]);
            b.internal(p, &[("cs", 1)]);
            b.internal(p, &[("cs", 0)]);
        }
        (
            b.finish().unwrap(),
            DisjunctivePredicate::at_least_one_not(2, "cs"),
        )
    }

    #[test]
    fn verify_accepts_algorithm_output() {
        let (dep, pred) = mutex_dep();
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap();
        assert!(verify_disjunctive(&dep, &pred, &rel, 10_000).is_ok());
        assert!(chain_structure(&dep, &pred, &rel).holds());
    }

    #[test]
    fn verify_rejects_empty_relation_when_control_needed() {
        let (dep, pred) = mutex_dep();
        let err = verify_disjunctive(&dep, &pred, &ControlRelation::empty(), 10_000).unwrap_err();
        match err {
            VerifyError::Violation { state } => {
                assert_eq!(state, GlobalState::from_indices(vec![1, 1]));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn verify_rejects_interfering_relation() {
        let (dep, pred) = mutex_dep();
        let rel = ControlRelation::from_pairs([
            (StateId::new(0usize, 1), StateId::new(1usize, 1)),
            (StateId::new(1usize, 1), StateId::new(0usize, 1)),
        ]);
        assert!(matches!(
            verify_disjunctive(&dep, &pred, &rel, 10_000),
            Err(VerifyError::Control(ControlError::Interference { .. }))
        ));
    }

    #[test]
    fn verify_budget_is_honored() {
        let (dep, pred) = mutex_dep();
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap();
        assert!(matches!(
            verify_disjunctive(&dep, &pred, &rel, 1),
            Err(VerifyError::Budget(_))
        ));
    }

    #[test]
    fn algorithm_matches_oracle_on_small_instances() {
        use pctl_deposet::generator::{pipelined_workload, CsConfig};
        for seed in 0..15 {
            let cfg = CsConfig {
                processes: 3,
                sections_per_process: 2,
                max_cs_len: 2,
                max_gap_len: 2,
            };
            let dep = pipelined_workload(&cfg, seed);
            let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
            assert!(
                agrees_with_oracle(&dep, &pred, OfflineOptions::default(), 5_000_000).unwrap(),
                "feasibility disagreement on seed {seed}"
            );
        }
    }

    #[test]
    fn bad_chain_structure_is_reported() {
        let (dep, pred) = mutex_dep();
        // The mutex trace has each process: ¬cs(0), cs(1), ¬cs(2).
        // Source at state 1 is a valid anchor (false, successor true)…
        let rel = ControlRelation::from_pairs([(StateId::new(0usize, 1), StateId::new(1usize, 1))]);
        assert!(chain_structure(&dep, &pred, &rel).sources_anchor);
        // …but a source at a true interior state is not an anchor…
        let rel_bad =
            ControlRelation::from_pairs([(StateId::new(0usize, 2), StateId::new(1usize, 1))]);
        let s = chain_structure(&dep, &pred, &rel_bad);
        assert!(!s.sources_anchor);
        assert!(s.targets_false_or_top);
        assert!(s.no_self_arrows);
        assert!(!s.holds());
        // …a true target is flagged…
        let rel_tt =
            ControlRelation::from_pairs([(StateId::new(0usize, 1), StateId::new(1usize, 2))]);
        // state (1,2) is ¬cs = true for the predicate ∨¬cs… careful: the
        // local predicate is ¬cs, so cs=0 states are TRUE. Target (1,2)
        // has cs=0 ⇒ predicate true ⇒ flagged (and it is also ⊤ of P1,
        // which excuses it). Use an interior true target instead: (1,0).
        let _ = rel_tt;
        let rel_interior_true =
            ControlRelation::from_pairs([(StateId::new(0usize, 1), StateId::new(1usize, 0))]);
        assert!(!chain_structure(&dep, &pred, &rel_interior_true).targets_false_or_top);
        // …and a self arrow is flagged.
        let rel2 =
            ControlRelation::from_pairs([(StateId::new(0usize, 0), StateId::new(0usize, 1))]);
        assert!(!chain_structure(&dep, &pred, &rel2).no_self_arrows);
    }

    #[test]
    fn sweep_reports_nothing_on_a_witnessed_trace() {
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 1)]);
        b.init_vars(1, &[("ok", 1)]);
        // P0 stays true throughout, so B is witnessed at every cut.
        b.internal(1, &[("ok", 0)]);
        b.internal(1, &[("ok", 1)]);
        let dep = b.finish().unwrap();
        let report = sweep_faulty_run(&dep, &LocalPredicate::var("ok"));
        assert!(report.fully_safe());
        assert!(report.safe_modulo_crashes());
        assert!(report.down_windows.is_empty());
    }

    #[test]
    fn sweep_flags_a_clean_violation_when_all_up_processes_are_false() {
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 1)]);
        b.init_vars(1, &[("ok", 1)]);
        b.internal(0, &[("ok", 0)]);
        b.internal(0, &[("ok", 1)]);
        b.internal(1, &[("ok", 0)]);
        b.internal(1, &[("ok", 1)]);
        let dep = b.finish().unwrap();
        let report = sweep_faulty_run(&dep, &LocalPredicate::var("ok"));
        assert!(!report.fully_safe());
        assert!(!report.safe_modulo_crashes());
        // The only cut with both processes false is (1, 1) — no crash to
        // blame, so it surfaces as a clean violation too.
        let cut = report.clean_violation.expect("concurrent false states");
        assert_eq!(cut, GlobalState::from_indices(vec![1, 1]));
        assert!(report.unwitnessed_cut.is_some());
        assert!(report.down_windows.is_empty());
    }

    #[test]
    fn sweep_attributes_unwitnessed_cuts_to_crash_windows() {
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 1)]);
        b.init_vars(1, &[("ok", 1)]);
        // P0 crashes (predicate still reads true, but a dead process is no
        // witness), then restarts; P1 goes false concurrently and later
        // crashes for good.
        b.internal(0, &[("down", 1)]);
        b.internal(0, &[("down", 0)]);
        b.internal(1, &[("ok", 0)]);
        b.internal(1, &[("ok", 1)]);
        b.internal(1, &[("down", 1)]);
        let dep = b.finish().unwrap();
        let report = sweep_faulty_run(&dep, &LocalPredicate::var("ok"));
        // Unwitnessed (P0 down ∥ P1 false) but never all-up-all-false.
        assert!(!report.fully_safe());
        assert!(report.safe_modulo_crashes());
        assert!(report.unwitnessed_cut.is_some());
        assert!(report.clean_violation.is_none());
        assert_eq!(
            report.down_windows,
            vec![
                DownWindow {
                    process: ProcessId(0),
                    from: 1,
                    to: Some(2)
                },
                DownWindow {
                    process: ProcessId(1),
                    from: 3,
                    to: None
                },
            ]
        );
    }
}
