//! Executable verification of control strategies.
//!
//! The paper's correctness proofs (Theorem 2 and the lemmas deferred to the
//! companion TR \[12]) are reproduced here as machine-checkable evidence:
//!
//! * [`verify_disjunctive`] — *soundness*: the synthesized relation does
//!   not interfere with causality, and every consistent global state of the
//!   controlled computation satisfies `B`. Since every global sequence
//!   moves through consistent global states only, and every consistent
//!   global state lies on some global sequence, this is exactly "the
//!   controlled deposet satisfies `B`".
//! * [`chain_structure`] — the structural invariant behind the proof: the
//!   output is a chain anchored at `⊥` or at crossed-interval endpoints,
//!   with every arrow pointing back into a false interval (or `⊤`).
//! * [`agrees_with_oracle`] — *completeness* cross-check on small
//!   instances: the algorithm answers "infeasible" exactly when no
//!   satisfying interleaving exists (the enforceable semantics; see
//!   `crate::overlap`'s module docs).

use crate::control::{ControlError, ControlRelation, ControlledDeposet};
use crate::offline::{control_disjunctive, OfflineOptions};
use pctl_deposet::lattice::LatticeBudgetExceeded;
use pctl_deposet::{Deposet, DisjunctivePredicate, GlobalState};
use std::fmt;

/// Verification failure.
#[derive(Debug)]
pub enum VerifyError {
    /// The relation cannot even be applied.
    Control(ControlError),
    /// The controlled lattice is too large to check exhaustively.
    Budget(LatticeBudgetExceeded),
    /// A consistent global state of the controlled computation violates the
    /// predicate.
    Violation {
        /// The offending global state.
        state: GlobalState,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Control(e) => write!(f, "control relation invalid: {e}"),
            VerifyError::Budget(e) => write!(f, "verification budget exceeded: {e}"),
            VerifyError::Violation { state } => {
                write!(f, "controlled global state {state} violates the predicate")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Exhaustively verify that `rel` makes `dep` satisfy the disjunctive
/// predicate `pred` (see module docs). `limit` bounds the number of
/// controlled-consistent global states visited.
pub fn verify_disjunctive(
    dep: &Deposet,
    pred: &DisjunctivePredicate,
    rel: &ControlRelation,
    limit: usize,
) -> Result<(), VerifyError> {
    let c = ControlledDeposet::new(dep, rel.clone()).map_err(VerifyError::Control)?;
    for g in c.consistent_global_states(limit).map_err(VerifyError::Budget)? {
        if !pred.eval(dep, &g) {
            return Err(VerifyError::Violation { state: g });
        }
    }
    Ok(())
}

/// Structural facts about an algorithm output used in the paper's proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainStructure {
    /// Every arrow source is a valid chain anchor: `⊥ᵢ` with the local
    /// predicate true there, or the last (`hi`) state of a crossed false
    /// interval — i.e. a false state whose successor is true. (The
    /// algorithm anchors at `I.hi` rather than its successor; see
    /// `offline::Run::state_of`.)
    pub sources_anchor: bool,
    /// Every arrow target state falsifies its process's local predicate or
    /// is the final state `⊤` of its process.
    pub targets_false_or_top: bool,
    /// No arrow connects a process to itself.
    pub no_self_arrows: bool,
}

impl ChainStructure {
    /// All structural invariants hold.
    pub fn holds(&self) -> bool {
        self.sources_anchor && self.targets_false_or_top && self.no_self_arrows
    }
}

/// Check the chain-structure invariants of a control relation produced by
/// the off-line algorithm.
pub fn chain_structure(
    dep: &Deposet,
    pred: &DisjunctivePredicate,
    rel: &ControlRelation,
) -> ChainStructure {
    let mut s = ChainStructure {
        sources_anchor: true,
        targets_false_or_top: true,
        no_self_arrows: true,
    };
    for &(x, y) in rel.pairs() {
        let x_true = pred.local(x.process).eval(dep.state(x));
        let anchor_at_bottom = x == dep.bottom(x.process) && x_true;
        let succ = x.successor();
        let anchor_at_interval_end = !x_true
            && dep.contains(succ)
            && pred.local(x.process).eval(dep.state(succ));
        if !(anchor_at_bottom || anchor_at_interval_end) {
            s.sources_anchor = false;
        }
        let is_top = y == dep.top(y.process);
        if !is_top && pred.local(y.process).eval(dep.state(y)) {
            s.targets_false_or_top = false;
        }
        if x.process == y.process {
            s.no_self_arrows = false;
        }
    }
    s
}

/// Cross-check the off-line algorithm's feasibility answer against the
/// exhaustive *interleaving* oracle (the enforceable semantics — see
/// `crate::overlap`'s module docs). Returns `Ok(true)` when they agree.
pub fn agrees_with_oracle(
    dep: &Deposet,
    pred: &DisjunctivePredicate,
    opts: OfflineOptions,
    limit: usize,
) -> Result<bool, LatticeBudgetExceeded> {
    let algo_feasible = control_disjunctive(dep, pred, opts).is_ok();
    let p = pred.clone();
    let oracle =
        pctl_deposet::sequences::find_satisfying_interleaving(dep, limit, move |d, g| {
            p.eval(d, g)
        })?;
    Ok(algo_feasible == oracle.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_causality::StateId;
    use pctl_deposet::DeposetBuilder;

    fn mutex_dep() -> (Deposet, DisjunctivePredicate) {
        let mut b = DeposetBuilder::new(2);
        for p in 0..2 {
            b.init_vars(p, &[("cs", 0)]);
            b.internal(p, &[("cs", 1)]);
            b.internal(p, &[("cs", 0)]);
        }
        (b.finish().unwrap(), DisjunctivePredicate::at_least_one_not(2, "cs"))
    }

    #[test]
    fn verify_accepts_algorithm_output() {
        let (dep, pred) = mutex_dep();
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap();
        assert!(verify_disjunctive(&dep, &pred, &rel, 10_000).is_ok());
        assert!(chain_structure(&dep, &pred, &rel).holds());
    }

    #[test]
    fn verify_rejects_empty_relation_when_control_needed() {
        let (dep, pred) = mutex_dep();
        let err =
            verify_disjunctive(&dep, &pred, &ControlRelation::empty(), 10_000).unwrap_err();
        match err {
            VerifyError::Violation { state } => {
                assert_eq!(state, GlobalState::from_indices(vec![1, 1]));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn verify_rejects_interfering_relation() {
        let (dep, pred) = mutex_dep();
        let rel = ControlRelation::from_pairs([
            (StateId::new(0usize, 1), StateId::new(1usize, 1)),
            (StateId::new(1usize, 1), StateId::new(0usize, 1)),
        ]);
        assert!(matches!(
            verify_disjunctive(&dep, &pred, &rel, 10_000),
            Err(VerifyError::Control(ControlError::Interference { .. }))
        ));
    }

    #[test]
    fn verify_budget_is_honored() {
        let (dep, pred) = mutex_dep();
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap();
        assert!(matches!(
            verify_disjunctive(&dep, &pred, &rel, 1),
            Err(VerifyError::Budget(_))
        ));
    }

    #[test]
    fn algorithm_matches_oracle_on_small_instances() {
        use pctl_deposet::generator::{pipelined_workload, CsConfig};
        for seed in 0..15 {
            let cfg = CsConfig {
                processes: 3,
                sections_per_process: 2,
                max_cs_len: 2,
                max_gap_len: 2,
            };
            let dep = pipelined_workload(&cfg, seed);
            let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
            assert!(
                agrees_with_oracle(&dep, &pred, OfflineOptions::default(), 5_000_000).unwrap(),
                "feasibility disagreement on seed {seed}"
            );
        }
    }

    #[test]
    fn bad_chain_structure_is_reported() {
        let (dep, pred) = mutex_dep();
        // The mutex trace has each process: ¬cs(0), cs(1), ¬cs(2).
        // Source at state 1 is a valid anchor (false, successor true)…
        let rel = ControlRelation::from_pairs([(
            StateId::new(0usize, 1),
            StateId::new(1usize, 1),
        )]);
        assert!(chain_structure(&dep, &pred, &rel).sources_anchor);
        // …but a source at a true interior state is not an anchor…
        let rel_bad = ControlRelation::from_pairs([(
            StateId::new(0usize, 2),
            StateId::new(1usize, 1),
        )]);
        let s = chain_structure(&dep, &pred, &rel_bad);
        assert!(!s.sources_anchor);
        assert!(s.targets_false_or_top);
        assert!(s.no_self_arrows);
        assert!(!s.holds());
        // …a true target is flagged…
        let rel_tt = ControlRelation::from_pairs([(
            StateId::new(0usize, 1),
            StateId::new(1usize, 2),
        )]);
        // state (1,2) is ¬cs = true for the predicate ∨¬cs… careful: the
        // local predicate is ¬cs, so cs=0 states are TRUE. Target (1,2)
        // has cs=0 ⇒ predicate true ⇒ flagged (and it is also ⊤ of P1,
        // which excuses it). Use an interior true target instead: (1,0).
        let _ = rel_tt;
        let rel_interior_true = ControlRelation::from_pairs([(
            StateId::new(0usize, 1),
            StateId::new(1usize, 0),
        )]);
        assert!(!chain_structure(&dep, &pred, &rel_interior_true).targets_false_or_top);
        // …and a self arrow is flagged.
        let rel2 = ControlRelation::from_pairs([(
            StateId::new(0usize, 0),
            StateId::new(0usize, 1),
        )]);
        assert!(!chain_structure(&dep, &pred, &rel2).no_self_arrows);
    }
}
