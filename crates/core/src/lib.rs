//! Predicate control for active debugging of distributed programs.
//!
//! This crate implements the contributions of Tarafdar & Garg (IPPS 1998):
//!
//! * [`control`] — control relations `C→`, interference checking, and
//!   controlled deposets (Section 3);
//! * [`offline`] — the efficient off-line control algorithm for disjunctive
//!   predicates (Figure 2), in both the O(n²p) and the naive O(n³p)
//!   variants, with infeasibility certificates ([`overlap`], Lemma 2);
//! * [`engine`] — the unified engine layer: one cached computation store
//!   per (deposet, predicate) pair that control, detection and verification
//!   all answer from;
//! * [`mod@sgsd`] / [`sat`] / [`reduction`] — the NP-hardness machinery of
//!   Section 4: SGSD, DPLL, and the SAT → SGSD gadget of Figure 1;
//! * [`verify`] — executable evidence for the correctness theorems:
//!   chain-structure checks and exhaustive verification of control
//!   strategies on small instances;
//! * [`online`] — the on-line control strategy of Figure 3 (the scapegoat /
//!   "anti-token" protocol) as a sans-I/O state machine plus simulator
//!   processes, the broadcast variant, and the Theorem 3 impossibility
//!   scenario; [`online::ft`] hardens it against message loss, duplication,
//!   reordering and crash/restart faults, with the post-run safety audit in
//!   [`verify::sweep_faulty_run`];
//! * [`streaming`] — the engine's query surface over a *growing*
//!   per-session store: the daemon's incremental path, answering
//!   detect/control/verify bit-identically to a fresh batch engine at
//!   every prefix;
//! * [`cnf_control`] — the conclusions' extension beyond disjunctive
//!   predicates: control of conjunctions of disjunctive clauses, sound when
//!   the per-clause chains do not interfere (which the paper's *locally
//!   independent* / mutually-separated condition guarantees).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cnf_control;
pub mod control;
pub mod engine;
pub mod offline;
pub mod online;
pub mod overlap;
pub mod reduction;
pub mod sat;
pub mod sgsd;
pub mod streaming;
pub mod verify;

pub use control::{ControlError, ControlRelation, ControlledDeposet};
pub use engine::PredicateEngine;
pub use offline::{
    control_disjunctive, control_disjunctive_traced, control_intervals, control_intervals_traced,
    Engine, Infeasible, OfflineOptions, OfflineStats, SelectPolicy,
};
pub use sgsd::{sgsd, SgsdOutcome};
pub use streaming::StreamEngine;
