//! The unified engine layer: one cached computation store per
//! (deposet, predicate) pair, shared by control, detection and
//! verification.
//!
//! Before this layer, every entry point re-derived the same intermediate
//! data: `control_disjunctive` extracted false intervals, the detectors
//! re-evaluated the local predicates per call, and the verification sweep
//! walked cloned predicate trees state by state. A [`PredicateEngine`]
//! builds the [`IntervalIndex`] (per-state truth bitmap + false intervals,
//! constructed in parallel per process) exactly once and answers every
//! question from it:
//!
//! * [`control`](PredicateEngine::control) — the paper's Figure 2 off-line
//!   algorithm over the cached intervals;
//! * [`detect_violation`](PredicateEngine::detect_violation) — weak
//!   conjunctive detection of `∧ᵢ ¬lᵢ`, with candidate queues read straight
//!   off the truth bitmap (no re-evaluation);
//! * [`infeasibility_witness`](PredicateEngine::infeasibility_witness) —
//!   the Lemma 2 overlap search (strong detection), again over the cached
//!   intervals;
//! * [`verify`](PredicateEngine::verify) — exhaustive soundness check of a
//!   synthesized relation.
//!
//! The control/detection duality (`controller exists ⟺ no overlapping
//! set`) thus runs against literally the same interval data, not two
//! independently-extracted copies.

use crate::control::ControlRelation;
use crate::offline::{control_intervals, Infeasible, OfflineOptions, OfflineStats};
use crate::verify::{verify_disjunctive, VerifyError};
use pctl_deposet::store;
use pctl_deposet::{
    Deposet, DisjunctivePredicate, FalseIntervals, GlobalState, Interval, IntervalIndex, StateId,
};

/// A computation + disjunctive predicate, with the derived store cached.
///
/// Borrows the deposet; predicate evaluation happens once, at
/// construction, into the index.
pub struct PredicateEngine<'a> {
    dep: &'a Deposet,
    pred: DisjunctivePredicate,
    index: IntervalIndex,
}

impl<'a> PredicateEngine<'a> {
    /// Build the engine, evaluating every local predicate once per state.
    ///
    /// # Panics
    /// Panics if the predicate arity differs from the process count.
    pub fn new(dep: &'a Deposet, pred: DisjunctivePredicate) -> Self {
        let _prof = pctl_prof::span("engine_build");
        let index = IntervalIndex::build(dep, &pred);
        PredicateEngine { dep, pred, index }
    }

    /// The underlying computation.
    pub fn deposet(&self) -> &'a Deposet {
        self.dep
    }

    /// The shard plan the computation's store (and therefore this engine's
    /// index build) ran under.
    pub fn shard_plan(&self) -> &pctl_deposet::ShardPlan {
        self.dep.shard_plan()
    }

    /// The predicate under control/detection.
    pub fn predicate(&self) -> &DisjunctivePredicate {
        &self.pred
    }

    /// The cached per-process false-interval lists.
    pub fn intervals(&self) -> &FalseIntervals {
        self.index.intervals()
    }

    /// Truth of the local predicate `l_{proc(s)}` at state `s`, from the
    /// bitmap (no predicate evaluation).
    pub fn truth(&self, s: StateId) -> bool {
        self.index.truth(s)
    }

    /// Run the off-line control algorithm (the paper's Figure 2) over the
    /// cached intervals.
    pub fn control(&self, opts: OfflineOptions) -> Result<ControlRelation, Infeasible> {
        self.control_with_stats(opts).0
    }

    /// [`control`](Self::control), also returning operation counts.
    pub fn control_with_stats(
        &self,
        opts: OfflineOptions,
    ) -> (Result<ControlRelation, Infeasible>, OfflineStats) {
        let _prof = pctl_prof::span("engine_control");
        control_intervals(self.dep, self.index.intervals(), opts)
    }

    /// Strong detection: search for a pairwise-overlapping set of false
    /// intervals (Lemma 2). `Some` iff no controller exists — the witness
    /// the control algorithm would also surface as [`Infeasible`].
    pub fn infeasibility_witness(&self) -> Option<Vec<Interval>> {
        let _prof = pctl_prof::span("engine_infeasibility");
        store::find_overlap(self.dep, self.index.intervals())
    }

    /// Weak detection: the earliest consistent cut where every local
    /// predicate is false (`possibly(∧ᵢ ¬lᵢ)`), i.e. a violation of the
    /// disjunction `B`. Candidate queues are read off the truth bitmap.
    pub fn detect_violation(&self) -> Option<GlobalState> {
        let _prof = pctl_prof::span("engine_detect_violation");
        let queues: Vec<Vec<u32>> = self
            .dep
            .processes()
            .map(|p| {
                self.index
                    .truths_of(p)
                    .iter()
                    .enumerate()
                    .filter(|&(_, &t)| !t)
                    .map(|(k, _)| k as u32)
                    .collect()
            })
            .collect();
        pctl_detect::possibly_from_queues(self.dep, &queues)
    }

    /// Exhaustively verify that `rel` makes the computation satisfy the
    /// predicate (bounded by `limit` visited cuts).
    pub fn verify(&self, rel: &ControlRelation, limit: usize) -> Result<(), VerifyError> {
        let _prof = pctl_prof::span("engine_verify");
        verify_disjunctive(self.dep, &self.pred, rel, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::control_disjunctive;
    use pctl_deposet::generator::{cs_workload, random_deposet, CsConfig, RandomConfig};
    use pctl_deposet::DeposetBuilder;

    #[test]
    fn engine_agrees_with_the_standalone_entry_points() {
        for seed in 0..10 {
            let dep = cs_workload(
                &CsConfig {
                    processes: 3,
                    sections_per_process: 3,
                    ..CsConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
            let eng = PredicateEngine::new(&dep, pred.clone());
            let opts = OfflineOptions::default();
            assert_eq!(
                eng.control(opts),
                control_disjunctive(&dep, &pred, opts),
                "seed {seed}"
            );
            assert_eq!(
                eng.detect_violation(),
                pctl_detect::detect_disjunctive_violation(&dep, &pred),
                "seed {seed}"
            );
            assert_eq!(
                eng.infeasibility_witness(),
                pctl_detect::definitely_all_false(&dep, &pred),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn control_and_overlap_are_duals_on_the_same_store() {
        for seed in 0..15 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 20,
                    ..RandomConfig::default()
                },
                seed,
            );
            let eng = PredicateEngine::new(&dep, DisjunctivePredicate::at_least_one(3, "ok"));
            match eng.control(OfflineOptions::default()) {
                Ok(rel) => {
                    assert!(eng.infeasibility_witness().is_none(), "seed {seed}");
                    assert!(eng.verify(&rel, 500_000).is_ok(), "seed {seed}");
                }
                Err(inf) => {
                    let w = eng.infeasibility_witness().expect("dual witness");
                    assert!(store::set_overlaps(&dep, &w), "seed {seed}");
                    assert!(store::set_overlaps(&dep, &inf.witness), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn engine_results_are_plan_independent() {
        use pctl_deposet::{Deposet, ShardPlan};
        for seed in 0..8 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 4,
                    events: 30,
                    ..RandomConfig::default()
                },
                seed,
            );
            let (st, ev, ms) = dep.clone().into_parts();
            let sharded =
                Deposet::from_parts_with_plan(st, ev, ms, Some(ShardPlan::with_shards(4, 2)))
                    .unwrap();
            let pred = DisjunctivePredicate::at_least_one(4, "ok");
            let flat_eng = PredicateEngine::new(&dep, pred.clone());
            let shard_eng = PredicateEngine::new(&sharded, pred);
            assert_eq!(shard_eng.shard_plan().shard_count(), 2);
            let opts = OfflineOptions::default();
            assert_eq!(
                flat_eng.control(opts),
                shard_eng.control(opts),
                "seed {seed}"
            );
            assert_eq!(
                flat_eng.infeasibility_witness(),
                shard_eng.infeasibility_witness(),
                "seed {seed}"
            );
            assert_eq!(
                flat_eng.detect_violation(),
                shard_eng.detect_violation(),
                "seed {seed}"
            );
            assert_eq!(flat_eng.intervals(), shard_eng.intervals(), "seed {seed}");
        }
    }

    #[test]
    fn truth_bitmap_matches_direct_evaluation() {
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 1)]);
        b.init_vars(1, &[("ok", 0)]);
        b.internal(0, &[("ok", 0)]);
        b.internal(1, &[("ok", 1)]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        let eng = PredicateEngine::new(&dep, pred.clone());
        for s in dep.state_ids() {
            assert_eq!(eng.truth(s), pred.local(s.process).eval(dep.state(s)));
        }
        assert_eq!(eng.intervals(), &FalseIntervals::extract(&dep, &pred));
        assert_eq!(eng.deposet().process_count(), 2);
        assert_eq!(eng.predicate(), &pred);
    }
}
