//! The unified engine layer: one cached computation store per
//! (deposet, predicate) pair, shared by control, detection and
//! verification.
//!
//! Before this layer, every entry point re-derived the same intermediate
//! data: `control_disjunctive` extracted false intervals, the detectors
//! re-evaluated the local predicates per call, and the verification sweep
//! walked cloned predicate trees state by state. A [`PredicateEngine`]
//! builds the [`IntervalIndex`] (per-state truth bitmap + false intervals,
//! constructed in parallel per process) exactly once and answers every
//! question from it:
//!
//! * [`control`](PredicateEngine::control) — the paper's Figure 2 off-line
//!   algorithm over the cached intervals;
//! * [`detect_violation`](PredicateEngine::detect_violation) — weak
//!   conjunctive detection of `∧ᵢ ¬lᵢ`, with candidate queues read straight
//!   off the truth bitmap (no re-evaluation);
//! * [`infeasibility_witness`](PredicateEngine::infeasibility_witness) —
//!   the Lemma 2 overlap search (strong detection), again over the cached
//!   intervals;
//! * [`verify`](PredicateEngine::verify) — exhaustive soundness check of a
//!   synthesized relation.
//!
//! The control/detection duality (`controller exists ⟺ no overlapping
//! set`) thus runs against literally the same interval data, not two
//! independently-extracted copies.

use crate::control::ControlRelation;
use crate::offline::{control_intervals, Infeasible, OfflineOptions, OfflineStats};
use crate::verify::{verify_disjunctive, verify_regular, VerifyError};
use pctl_deposet::store;
use pctl_deposet::{
    ClassError, Deposet, DisjunctivePredicate, FalseIntervals, GlobalState, Interval,
    IntervalIndex, PredicateClass, RegularPredicate, SlicedDeposet, StateId,
};

/// The per-class derived store: what "build once, answer everything from
/// it" means for each predicate class.
enum ClassState {
    /// The paper's path, untouched: truth bitmap + false intervals.
    Disjunctive {
        pred: DisjunctivePredicate,
        index: IntervalIndex,
    },
    /// Slice-then-delegate: a computation slice of the regular violation;
    /// the slice's frontier-possible runs play the role the false
    /// intervals play for the disjunctive class (a satisfying cut has
    /// *every* frontier inside them), so the identical interval algorithms
    /// run downstream.
    Regular {
        violation: RegularPredicate,
        // Boxed: the slice's columnar payload dwarfs the disjunctive
        // variant, and the engine only ever holds one.
        slice: Box<SlicedDeposet>,
    },
}

/// A computation + predicate class, with the derived store cached.
///
/// Borrows the deposet; predicate evaluation happens once, at
/// construction, into the index (disjunctive) or the slice (regular).
pub struct PredicateEngine<'a> {
    dep: &'a Deposet,
    class: ClassState,
}

impl<'a> PredicateEngine<'a> {
    /// Build the engine, evaluating every local predicate once per state.
    ///
    /// # Panics
    /// Panics if the predicate arity differs from the process count.
    pub fn new(dep: &'a Deposet, pred: DisjunctivePredicate) -> Self {
        let _prof = pctl_prof::span("engine_build");
        let index = IntervalIndex::build(dep, &pred);
        PredicateEngine {
            dep,
            class: ClassState::Disjunctive { pred, index },
        }
    }

    /// Build the engine for any [`PredicateClass`], validating it against
    /// the computation first. Disjunctive classes take exactly the
    /// [`PredicateEngine::new`] path (bit-identical verdicts); regular
    /// classes are sliced once and every query answers from the slice.
    ///
    /// For regular classes, [`control`](Self::control) is *sound but
    /// conservative*: an `Ok` relation provably prevents every satisfying
    /// cut (each such cut has all frontiers inside the slice's
    /// frontier-possible runs), while an `Err` may occur even when some
    /// cleverer controller exists outside the interval family.
    pub fn for_class(dep: &'a Deposet, class: &PredicateClass) -> Result<Self, ClassError> {
        class.validate(dep.process_count())?;
        match class {
            PredicateClass::Disjunctive(pred) => Ok(Self::new(dep, pred.clone())),
            PredicateClass::Regular { violation, .. } => {
                let _prof = pctl_prof::span("engine_build");
                let slice = Box::new(SlicedDeposet::build(dep, violation)?);
                Ok(PredicateEngine {
                    dep,
                    class: ClassState::Regular {
                        violation: violation.clone(),
                        slice,
                    },
                })
            }
        }
    }

    /// The predicate class the engine was built for.
    pub fn predicate_class(&self) -> PredicateClass {
        match &self.class {
            ClassState::Disjunctive { pred, .. } => PredicateClass::disjunctive(pred.clone()),
            ClassState::Regular { violation, .. } => {
                PredicateClass::regular(self.dep.process_count() as u32, violation.clone())
            }
        }
    }

    /// The computation slice, for regular classes.
    pub fn slice(&self) -> Option<&SlicedDeposet> {
        match &self.class {
            ClassState::Disjunctive { .. } => None,
            ClassState::Regular { slice, .. } => Some(slice),
        }
    }

    /// The underlying computation.
    pub fn deposet(&self) -> &'a Deposet {
        self.dep
    }

    /// The shard plan the computation's store (and therefore this engine's
    /// index build) ran under.
    pub fn shard_plan(&self) -> &pctl_deposet::ShardPlan {
        self.dep.shard_plan()
    }

    /// The predicate under control/detection.
    ///
    /// # Panics
    /// Panics for a regular-class engine, which has no disjunctive form —
    /// use [`predicate_class`](Self::predicate_class) there.
    pub fn predicate(&self) -> &DisjunctivePredicate {
        match &self.class {
            ClassState::Disjunctive { pred, .. } => pred,
            ClassState::Regular { .. } => {
                panic!("regular-class engine has no disjunctive predicate")
            }
        }
    }

    /// The cached per-process interval lists the control algorithms run
    /// over: false intervals of the disjuncts (disjunctive), or the
    /// slice's frontier-possible runs (regular).
    pub fn intervals(&self) -> &FalseIntervals {
        match &self.class {
            ClassState::Disjunctive { index, .. } => index.intervals(),
            ClassState::Regular { slice, .. } => slice.frontier_intervals(),
        }
    }

    /// Per-state "good" bit, from the cached store (no predicate
    /// evaluation): truth of the local disjunct `l_{proc(s)}` at `s`
    /// (disjunctive), or "`s` cannot be the frontier of any violating cut"
    /// (regular). In both classes, a state with a false bit is one the
    /// controller may have to steer around.
    pub fn truth(&self, s: StateId) -> bool {
        match &self.class {
            ClassState::Disjunctive { index, .. } => index.truth(s),
            ClassState::Regular { slice, .. } => !slice.frontier_possible(s),
        }
    }

    /// Run the off-line control algorithm (the paper's Figure 2) over the
    /// cached intervals.
    pub fn control(&self, opts: OfflineOptions) -> Result<ControlRelation, Infeasible> {
        self.control_with_stats(opts).0
    }

    /// [`control`](Self::control), also returning operation counts.
    pub fn control_with_stats(
        &self,
        opts: OfflineOptions,
    ) -> (Result<ControlRelation, Infeasible>, OfflineStats) {
        let _prof = pctl_prof::span("engine_control");
        control_intervals(self.dep, self.intervals(), opts)
    }

    /// Strong detection: search for a pairwise-overlapping set of false
    /// intervals (Lemma 2). `Some` iff no controller exists — the witness
    /// the control algorithm would also surface as [`Infeasible`].
    pub fn infeasibility_witness(&self) -> Option<Vec<Interval>> {
        let _prof = pctl_prof::span("engine_infeasibility");
        store::find_overlap(self.dep, self.intervals())
    }

    /// Weak detection: the earliest consistent cut where every local
    /// predicate is false (`possibly(∧ᵢ ¬lᵢ)`), i.e. a violation of the
    /// disjunction `B`. Candidate queues are read off the truth bitmap.
    pub fn detect_violation(&self) -> Option<GlobalState> {
        let _prof = pctl_prof::span("engine_detect_violation");
        match &self.class {
            ClassState::Disjunctive { index, .. } => {
                let queues: Vec<Vec<u32>> = self
                    .dep
                    .processes()
                    .map(|p| {
                        index
                            .truths_of(p)
                            .iter()
                            .enumerate()
                            .filter(|&(_, &t)| !t)
                            .map(|(k, _)| k as u32)
                            .collect()
                    })
                    .collect();
                pctl_detect::possibly_from_queues(self.dep, &queues)
            }
            // The slice's least cut *is* the earliest satisfying cut.
            ClassState::Regular { slice, .. } => slice.min_cut().cloned(),
        }
    }

    /// Exhaustively verify that `rel` makes the computation satisfy the
    /// predicate (bounded by `limit` visited cuts).
    pub fn verify(&self, rel: &ControlRelation, limit: usize) -> Result<(), VerifyError> {
        let _prof = pctl_prof::span("engine_verify");
        match &self.class {
            ClassState::Disjunctive { pred, .. } => verify_disjunctive(self.dep, pred, rel, limit),
            ClassState::Regular { violation, .. } => {
                verify_regular(self.dep, violation, rel, limit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::control_disjunctive;
    use pctl_deposet::generator::{cs_workload, random_deposet, CsConfig, RandomConfig};
    use pctl_deposet::DeposetBuilder;

    #[test]
    fn engine_agrees_with_the_standalone_entry_points() {
        for seed in 0..10 {
            let dep = cs_workload(
                &CsConfig {
                    processes: 3,
                    sections_per_process: 3,
                    ..CsConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
            let eng = PredicateEngine::new(&dep, pred.clone());
            let opts = OfflineOptions::default();
            assert_eq!(
                eng.control(opts),
                control_disjunctive(&dep, &pred, opts),
                "seed {seed}"
            );
            assert_eq!(
                eng.detect_violation(),
                pctl_detect::detect_disjunctive_violation(&dep, &pred),
                "seed {seed}"
            );
            assert_eq!(
                eng.infeasibility_witness(),
                pctl_detect::definitely_all_false(&dep, &pred),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn control_and_overlap_are_duals_on_the_same_store() {
        for seed in 0..15 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 20,
                    ..RandomConfig::default()
                },
                seed,
            );
            let eng = PredicateEngine::new(&dep, DisjunctivePredicate::at_least_one(3, "ok"));
            match eng.control(OfflineOptions::default()) {
                Ok(rel) => {
                    assert!(eng.infeasibility_witness().is_none(), "seed {seed}");
                    assert!(eng.verify(&rel, 500_000).is_ok(), "seed {seed}");
                }
                Err(inf) => {
                    let w = eng.infeasibility_witness().expect("dual witness");
                    assert!(store::set_overlaps(&dep, &w), "seed {seed}");
                    assert!(store::set_overlaps(&dep, &inf.witness), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn engine_results_are_plan_independent() {
        use pctl_deposet::{Deposet, ShardPlan};
        for seed in 0..8 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 4,
                    events: 30,
                    ..RandomConfig::default()
                },
                seed,
            );
            let (st, ev, ms) = dep.clone().into_parts();
            let sharded =
                Deposet::from_parts_with_plan(st, ev, ms, Some(ShardPlan::with_shards(4, 2)))
                    .unwrap();
            let pred = DisjunctivePredicate::at_least_one(4, "ok");
            let flat_eng = PredicateEngine::new(&dep, pred.clone());
            let shard_eng = PredicateEngine::new(&sharded, pred);
            assert_eq!(shard_eng.shard_plan().shard_count(), 2);
            let opts = OfflineOptions::default();
            assert_eq!(
                flat_eng.control(opts),
                shard_eng.control(opts),
                "seed {seed}"
            );
            assert_eq!(
                flat_eng.infeasibility_witness(),
                shard_eng.infeasibility_witness(),
                "seed {seed}"
            );
            assert_eq!(
                flat_eng.detect_violation(),
                shard_eng.detect_violation(),
                "seed {seed}"
            );
            assert_eq!(flat_eng.intervals(), shard_eng.intervals(), "seed {seed}");
        }
    }

    #[test]
    fn for_class_disjunctive_is_bit_identical_to_new() {
        use pctl_deposet::PredicateClass;
        for seed in 0..10 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 24,
                    ..RandomConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            let direct = PredicateEngine::new(&dep, pred.clone());
            let via_class =
                PredicateEngine::for_class(&dep, &PredicateClass::disjunctive(pred)).unwrap();
            let opts = OfflineOptions::default();
            assert_eq!(direct.control(opts), via_class.control(opts), "seed {seed}");
            assert_eq!(
                direct.detect_violation(),
                via_class.detect_violation(),
                "seed {seed}"
            );
            assert_eq!(
                direct.infeasibility_witness(),
                via_class.infeasibility_witness(),
                "seed {seed}"
            );
            assert_eq!(direct.intervals(), via_class.intervals(), "seed {seed}");
            for s in dep.state_ids() {
                assert_eq!(direct.truth(s), via_class.truth(s), "seed {seed}");
            }
        }
    }

    #[test]
    fn regular_engine_detects_the_same_violations_as_the_disjunctive_path() {
        use pctl_deposet::{LocalPredicate, PredicateClass, RegularPredicate};
        // The violation of `∨ᵢ okᵢ` is the *regular* predicate `∧ᵢ ¬okᵢ`;
        // both engines must find a violation on exactly the same inputs
        // (the regular detector returns the slice's least cut, the
        // disjunctive one the earliest weak-conjunctive cut — existence
        // must agree, and both witnesses must actually violate).
        for seed in 0..15 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 24,
                    ..RandomConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            let violation = RegularPredicate::And(
                (0..3)
                    .map(|i| RegularPredicate::local(i as usize, LocalPredicate::not_var("ok")))
                    .collect(),
            );
            let disj = PredicateEngine::new(&dep, pred.clone());
            let reg =
                PredicateEngine::for_class(&dep, &PredicateClass::regular(3, violation.clone()))
                    .unwrap();
            let d = disj.detect_violation();
            let r = reg.detect_violation();
            assert_eq!(d.is_some(), r.is_some(), "seed {seed}");
            if let Some(g) = &r {
                assert!(violation.eval(&dep, g), "seed {seed}: witness must violate");
                assert!(!pred.eval(&dep, g), "seed {seed}");
            }
            // Slice-then-delegate control, when feasible, must verify.
            if let Ok(rel) = reg.control(OfflineOptions::default()) {
                assert!(reg.verify(&rel, 500_000).is_ok(), "seed {seed}");
            }
        }
    }

    #[test]
    fn regular_engine_covers_a_scenario_disjunctive_cannot_express() {
        use pctl_deposet::{PredicateClass, RegularPredicate};
        // Subset conjunction over 3 processes: "P0 and P1 both in their
        // critical section" — not expressible as a DisjunctivePredicate
        // (which needs exactly one disjunct per process).
        let dep = random_deposet(
            &RandomConfig {
                processes: 3,
                events: 30,
                ..RandomConfig::default()
            },
            42,
        );
        let violation = RegularPredicate::conj_var(&[0, 1], "ok");
        let class = PredicateClass::regular(3, violation.clone());
        let eng = PredicateEngine::for_class(&dep, &class).unwrap();
        let detected = eng.detect_violation();
        // Oracle: brute-force lattice search.
        let oracle =
            pctl_deposet::lattice::possibly(&dep, 500_000, |d, g| violation.eval(d, g)).unwrap();
        assert_eq!(detected.is_some(), oracle.is_some());
        if let Ok(rel) = eng.control(OfflineOptions::default()) {
            assert!(eng.verify(&rel, 500_000).is_ok());
        }
    }

    #[test]
    fn truth_bitmap_matches_direct_evaluation() {
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 1)]);
        b.init_vars(1, &[("ok", 0)]);
        b.internal(0, &[("ok", 0)]);
        b.internal(1, &[("ok", 1)]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        let eng = PredicateEngine::new(&dep, pred.clone());
        for s in dep.state_ids() {
            assert_eq!(eng.truth(s), pred.local(s.process).eval(dep.state(s)));
        }
        assert_eq!(eng.intervals(), &FalseIntervals::extract(&dep, &pred));
        assert_eq!(eng.deposet().process_count(), 2);
        assert_eq!(eng.predicate(), &pred);
    }
}
