//! Fault-tolerant scapegoat protocol.
//!
//! The paper's Figure 3 strategy assumes reliable channels and immortal
//! processes. [`FtController`] hardens it against the faults injected by
//! `pctl-sim::faults`:
//!
//! * **Message loss / reordering** — every `req` carries a sequence number
//!   and is retransmitted on a timer with exponential backoff until the
//!   matching `ack` arrives; receivers suppress duplicates and re-`ack`
//!   idempotently, so a lost `ack` is recovered by the requester's
//!   retransmission. After [`FtParams::escalate_after`] retransmissions the
//!   requester widens its target set one peer at a time (ring order), so a
//!   permanently dead peer cannot block a handover forever.
//! * **Crashed scapegoat** — the scapegoat broadcasts heartbeats; every
//!   non-scapegoat runs a watchdog with a per-process staggered timeout.
//!   A silent period regenerates the anti-token at the first watching
//!   process that is currently `lᵢ`-true. Extra scapegoats are *safe* (the
//!   role is a liability, not a privilege — duplicating it only blocks more
//!   processes); the dangerous state is *zero* scapegoats, which the
//!   watchdog bounds to one detection window.
//! * **Restart** — a restarted process conservatively rejoins *as a
//!   scapegoat* (it assumes it may have been the only one), re-answering
//!   any requests it had deferred before the crash.
//!
//! # What survives, and what is traded away
//!
//! Under loss, duplication and reordering alone the original safety
//! guarantee is fully preserved: every `ack` acceptance is matched by
//! sequence number to exactly one role-grant that happened at a
//! predicate-true, non-waiting state, so the chain argument of Theorem 4
//! goes through unchanged (duplicates are consumed at most once; spurious
//! re-`ack`s are ignored by the sequence check).
//!
//! A crash is different: no asynchronous protocol can replace a crashed
//! scapegoat instantaneously, so `B` may be violated *while the crashed
//! process is down*, for at most one watchdog window. The post-run sweep
//! (`pctl_core::verify::sweep_faulty_run`) classifies exactly this: a
//! violating cut in which some process is down is the documented trade-off;
//! a violating cut with every process up is a protocol bug. See DESIGN.md
//! ("Deviations from Figure 3 under faults").

use pctl_deposet::ProcessId;
use pctl_sim::{Ctx, Payload, Process, SimTime, TimerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

use super::{PeerSelect, Phase};

/// Control messages of the hardened protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FtMsg {
    /// "Take the scapegoat role from me" — retransmitted until acked.
    Req {
        /// Requesting controller.
        from: ProcessId,
        /// Requester-local handover number; `Ack` must echo it.
        seq: u64,
    },
    /// "Role accepted; handover `seq` may complete."
    Ack {
        /// The handover being acknowledged.
        seq: u64,
    },
    /// Periodic liveness beacon from a scapegoat.
    Heartbeat {
        /// The beaconing scapegoat.
        from: ProcessId,
        /// Regeneration count of the sender (diagnostic only).
        epoch: u64,
    },
}

impl Payload for FtMsg {
    fn tag(&self) -> &'static str {
        match self {
            FtMsg::Req { .. } => "req",
            FtMsg::Ack { .. } => "ack",
            FtMsg::Heartbeat { .. } => "hb",
        }
    }
    fn is_control(&self) -> bool {
        true
    }
}

/// The controller's three timer chains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FtTimerKind {
    /// Pending-`req` retransmission (exponential backoff).
    Retransmit,
    /// Scapegoat heartbeat period.
    Heartbeat,
    /// Non-scapegoat watchdog for scapegoat liveness.
    Watchdog,
}

/// Effects requested by [`FtController`]; the host applies them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FtAction {
    /// Send a control message.
    Send {
        /// Destination controller.
        to: ProcessId,
        /// The message.
        msg: FtMsg,
    },
    /// The blocked falsification may proceed.
    Grant,
    /// Arm a timer of the given kind `delay` ticks from now. The controller
    /// keeps at most one live chain per kind; a fired timer must be routed
    /// back via [`FtController::on_timer`].
    Arm {
        /// Which chain.
        kind: FtTimerKind,
        /// Ticks from now.
        delay: u64,
    },
}

/// Outcome of [`FtController::request_false`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FtDecision {
    /// Not the scapegoat: go false immediately.
    Granted,
    /// Scapegoat: blocked until an `ack`; apply these actions first.
    Blocked(Vec<FtAction>),
}

/// Tuning knobs of the hardened protocol.
#[derive(Clone, Copy, Debug)]
pub struct FtParams {
    /// First retransmission timeout (should exceed one round trip).
    pub rto_initial: u64,
    /// Backoff cap for the retransmission timeout.
    pub rto_max: u64,
    /// Scapegoat heartbeat period.
    pub heartbeat_every: u64,
    /// Base watchdog timeout; a silent period this long triggers
    /// regeneration (plus the per-process stagger).
    pub watch_timeout: u64,
    /// Extra watchdog delay per process index, staggering regeneration so
    /// one process usually wins (ties are safe, only wasteful).
    pub watch_stagger: u64,
    /// After this many retransmissions of one `req`, widen the target set
    /// by one peer (ring order) per further retransmission.
    pub escalate_after: u32,
}

impl Default for FtParams {
    fn default() -> Self {
        FtParams {
            rto_initial: 50,
            rto_max: 400,
            heartbeat_every: 40,
            watch_timeout: 150,
            watch_stagger: 35,
            escalate_after: 2,
        }
    }
}

/// The hardened per-process controller, as a pure state machine.
///
/// Like [`super::ScapegoatController`] it is sans-I/O: hosts feed it
/// messages and timer expirations and apply the returned [`FtAction`]s.
#[derive(Clone, Debug)]
pub struct FtController {
    me: ProcessId,
    n: usize,
    params: FtParams,
    scapegoat: bool,
    waiting_ack: bool,
    local_true: bool,
    /// Handover number of the outstanding (or most recent) request.
    req_seq: u64,
    /// Current targets of the outstanding request (grows on escalation).
    req_targets: Vec<ProcessId>,
    /// Retransmissions performed for the outstanding request.
    req_tries: u32,
    /// Current retransmission timeout (doubles per try, capped).
    rto: u64,
    /// Deferred requests, at most one per requester (latest seq wins).
    pending: VecDeque<(ProcessId, u64)>,
    /// Highest handover number acked per requester, for idempotent re-acks.
    acked: BTreeMap<ProcessId, u64>,
    /// Live-chain flags; at most one outstanding timer per kind.
    rt_armed: bool,
    hb_armed: bool,
    watch_armed: bool,
    /// Heartbeat heard since the watchdog last fired.
    heard_heartbeat: bool,
    /// Times this controller regenerated the anti-token.
    epoch: u64,
}

impl FtController {
    /// A controller for a system of `n` processes; exactly one process
    /// should start with `init_scapegoat = true`.
    pub fn new(me: ProcessId, n: usize, init_scapegoat: bool, params: FtParams) -> Self {
        assert!(n >= 2);
        FtController {
            me,
            n,
            params,
            scapegoat: init_scapegoat,
            waiting_ack: false,
            local_true: true,
            req_seq: 0,
            req_targets: Vec::new(),
            req_tries: 0,
            rto: params.rto_initial,
            pending: VecDeque::new(),
            acked: BTreeMap::new(),
            rt_armed: false,
            hb_armed: false,
            watch_armed: false,
            heard_heartbeat: false,
            epoch: 0,
        }
    }

    /// Whether this controller currently holds an anti-token.
    pub fn is_scapegoat(&self) -> bool {
        self.scapegoat
    }

    /// Whether the underlying process is blocked awaiting an `ack`.
    pub fn is_blocked(&self) -> bool {
        self.waiting_ack
    }

    /// How many times this controller regenerated the anti-token.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn watch_delay(&self) -> u64 {
        self.params.watch_timeout + self.params.watch_stagger * self.me.index() as u64
    }

    fn others(&self) -> impl Iterator<Item = ProcessId> + '_ {
        let me = self.me.index();
        (0..self.n)
            .filter(move |&i| i != me)
            .map(|i| ProcessId(i as u32))
    }

    fn ensure_heartbeat(&mut self, actions: &mut Vec<FtAction>) {
        if !self.hb_armed {
            self.hb_armed = true;
            actions.push(FtAction::Arm {
                kind: FtTimerKind::Heartbeat,
                delay: self.params.heartbeat_every,
            });
        }
    }

    fn ensure_watchdog(&mut self, actions: &mut Vec<FtAction>) {
        if !self.watch_armed {
            self.watch_armed = true;
            actions.push(FtAction::Arm {
                kind: FtTimerKind::Watchdog,
                delay: self.watch_delay(),
            });
        }
    }

    fn ensure_retransmit(&mut self, actions: &mut Vec<FtAction>) {
        if !self.rt_armed {
            self.rt_armed = true;
            actions.push(FtAction::Arm {
                kind: FtTimerKind::Retransmit,
                delay: self.rto,
            });
        }
    }

    /// Actions to apply once at process start (arms the initial chains).
    pub fn start(&mut self) -> Vec<FtAction> {
        let mut actions = Vec::new();
        if self.scapegoat {
            self.ensure_heartbeat(&mut actions);
        } else {
            self.ensure_watchdog(&mut actions);
        }
        actions
    }

    /// The underlying process asks to make `lᵢ` false. `peers` seeds the
    /// request's target set (escalation may widen it later).
    ///
    /// # Panics
    /// Panics on protocol misuse: requesting while already blocked or while
    /// already false.
    pub fn request_false(&mut self, peers: &[ProcessId]) -> FtDecision {
        let _prof = pctl_prof::span("ft_request_false");
        assert!(!self.waiting_ack, "already blocked on an ack");
        assert!(self.local_true, "already false");
        if !self.scapegoat {
            self.local_true = false;
            return FtDecision::Granted;
        }
        assert!(!peers.is_empty(), "scapegoat needs at least one peer");
        self.waiting_ack = true;
        self.req_seq += 1;
        self.req_tries = 0;
        self.rto = self.params.rto_initial;
        self.req_targets = peers.to_vec();
        let mut actions = Vec::new();
        for &p in peers {
            assert_ne!(p, self.me, "cannot hand the scapegoat role to oneself");
            actions.push(FtAction::Send {
                to: p,
                msg: FtMsg::Req {
                    from: self.me,
                    seq: self.req_seq,
                },
            });
        }
        self.ensure_retransmit(&mut actions);
        FtDecision::Blocked(actions)
    }

    /// A control message arrived.
    pub fn on_message(&mut self, msg: FtMsg) -> Vec<FtAction> {
        let _prof = pctl_prof::span("ft_on_message");
        match msg {
            FtMsg::Req { from, seq } => {
                if self.acked.get(&from).is_some_and(|&a| seq <= a) {
                    // Duplicate of a handover we already granted: the ack
                    // may have been lost, so re-ack idempotently. The
                    // requester's sequence check makes stale re-acks inert,
                    // and the role was granted exactly once (above), so
                    // this cannot mint a second transfer.
                    return vec![FtAction::Send {
                        to: from,
                        msg: FtMsg::Ack { seq },
                    }];
                }
                if self.local_true && !self.waiting_ack {
                    self.scapegoat = true;
                    self.acked.insert(from, seq);
                    let mut actions = vec![FtAction::Send {
                        to: from,
                        msg: FtMsg::Ack { seq },
                    }];
                    self.ensure_heartbeat(&mut actions);
                    actions
                } else {
                    // Defer, like Figure 3 — but keep only the newest seq
                    // per requester so retransmitted reqs don't pile up.
                    match self.pending.iter_mut().find(|(p, _)| *p == from) {
                        Some(entry) => entry.1 = entry.1.max(seq),
                        None => self.pending.push_back((from, seq)),
                    }
                    vec![]
                }
            }
            FtMsg::Ack { seq } => {
                if self.waiting_ack && seq == self.req_seq {
                    self.waiting_ack = false;
                    self.scapegoat = false;
                    self.local_true = false;
                    let mut actions = vec![FtAction::Grant];
                    self.ensure_watchdog(&mut actions);
                    actions
                } else {
                    // Stale or duplicate ack (first one won): inert.
                    vec![]
                }
            }
            FtMsg::Heartbeat { .. } => {
                self.heard_heartbeat = true;
                vec![]
            }
        }
    }

    /// The underlying process turned `lᵢ` true again: answer deferred
    /// requests (taking the scapegoat role).
    pub fn notify_true(&mut self) -> Vec<FtAction> {
        let _prof = pctl_prof::span("ft_notify_true");
        self.local_true = true;
        let mut actions = Vec::new();
        while let Some((p, seq)) = self.pending.pop_front() {
            self.scapegoat = true;
            let a = self.acked.entry(p).or_insert(0);
            *a = (*a).max(seq);
            actions.push(FtAction::Send {
                to: p,
                msg: FtMsg::Ack { seq },
            });
        }
        if self.scapegoat {
            self.ensure_heartbeat(&mut actions);
        }
        actions
    }

    /// A timer of `kind` (previously requested via [`FtAction::Arm`])
    /// fired.
    pub fn on_timer(&mut self, kind: FtTimerKind) -> Vec<FtAction> {
        let _prof = pctl_prof::span("ft_on_timer");
        match kind {
            FtTimerKind::Retransmit => {
                if !self.waiting_ack {
                    self.rt_armed = false;
                    return vec![];
                }
                self.req_tries += 1;
                if self.req_tries > self.params.escalate_after {
                    // Widen the target set by the next untargeted peer in
                    // ring order: a dead or deaf peer cannot block the
                    // handover forever.
                    let next = self.others().find(|p| !self.req_targets.contains(p));
                    if let Some(p) = next {
                        self.req_targets.push(p);
                    }
                }
                let mut actions: Vec<FtAction> = self
                    .req_targets
                    .clone()
                    .into_iter()
                    .map(|p| FtAction::Send {
                        to: p,
                        msg: FtMsg::Req {
                            from: self.me,
                            seq: self.req_seq,
                        },
                    })
                    .collect();
                self.rto = (self.rto * 2).min(self.params.rto_max);
                actions.push(FtAction::Arm {
                    kind: FtTimerKind::Retransmit,
                    delay: self.rto,
                });
                actions
            }
            FtTimerKind::Heartbeat => {
                if !self.scapegoat {
                    self.hb_armed = false;
                    return vec![];
                }
                let mut actions: Vec<FtAction> = self
                    .others()
                    .map(|p| FtAction::Send {
                        to: p,
                        msg: FtMsg::Heartbeat {
                            from: self.me,
                            epoch: self.epoch,
                        },
                    })
                    .collect();
                actions.push(FtAction::Arm {
                    kind: FtTimerKind::Heartbeat,
                    delay: self.params.heartbeat_every,
                });
                actions
            }
            FtTimerKind::Watchdog => {
                if self.scapegoat {
                    // A scapegoat needs no watchdog; let the chain die.
                    self.watch_armed = false;
                    return vec![];
                }
                if self.heard_heartbeat {
                    self.heard_heartbeat = false;
                    return vec![FtAction::Arm {
                        kind: FtTimerKind::Watchdog,
                        delay: self.watch_delay(),
                    }];
                }
                if self.local_true && !self.waiting_ack {
                    // Silence: regenerate the anti-token here. Possibly a
                    // peer regenerated too — extra scapegoats are safe.
                    self.scapegoat = true;
                    self.epoch += 1;
                    self.watch_armed = false;
                    let mut actions = Vec::new();
                    self.ensure_heartbeat(&mut actions);
                    actions
                } else {
                    // Currently false: not allowed to take the liability.
                    // Keep watching; we will be true again soon (A1).
                    vec![FtAction::Arm {
                        kind: FtTimerKind::Watchdog,
                        delay: self.watch_delay(),
                    }]
                }
            }
        }
    }

    /// Conservative rejoin after a crash+restart. The host must first bring
    /// the traced predicate variable back to true; all pre-crash timer
    /// chains are dead (the simulator discards stale timers), so every
    /// chain flag is reset here.
    pub fn rejoin(&mut self) -> Vec<FtAction> {
        let _prof = pctl_prof::span("ft_rejoin");
        self.scapegoat = true;
        self.waiting_ack = false;
        self.local_true = true;
        self.rt_armed = false;
        self.hb_armed = false;
        self.watch_armed = false;
        self.heard_heartbeat = false;
        self.rto = self.params.rto_initial;
        let mut actions = Vec::new();
        // Requests deferred before the crash are answered now — we are
        // true, and we hold the (regenerated) role.
        while let Some((p, seq)) = self.pending.pop_front() {
            let a = self.acked.entry(p).or_insert(0);
            *a = (*a).max(seq);
            actions.push(FtAction::Send {
                to: p,
                msg: FtMsg::Ack { seq },
            });
        }
        self.ensure_heartbeat(&mut actions);
        actions
    }
}

/// Scripted application + hardened controller on the simulator: the
/// fault-tolerant analogue of [`super::PhasedProcess`], for driving the
/// protocol through fault plans.
pub struct FtPhasedProcess {
    ctrl: FtController,
    script: VecDeque<Phase>,
    select: PeerSelect,
    n: usize,
    requested_at: Option<SimTime>,
    current_false_len: Option<u64>,
    /// Map from armed timer id to chain kind; unknown ids are phase timers.
    ctrl_timers: BTreeMap<u64, FtTimerKind>,
    finished: bool,
}

impl FtPhasedProcess {
    /// Build a process for a system of `n` processes.
    pub fn new(
        me: ProcessId,
        n: usize,
        init_scapegoat: bool,
        select: PeerSelect,
        params: FtParams,
        script: Vec<Phase>,
    ) -> Self {
        FtPhasedProcess {
            ctrl: FtController::new(me, n, init_scapegoat, params),
            script: script.into(),
            select,
            n,
            requested_at: None,
            current_false_len: None,
            ctrl_timers: BTreeMap::new(),
            finished: false,
        }
    }

    fn peers(&self, ctx: &mut Ctx<'_, FtMsg>) -> Vec<ProcessId> {
        let me = ctx.me().index();
        let others: Vec<ProcessId> = (0..self.n)
            .filter(|&i| i != me)
            .map(|i| ProcessId(i as u32))
            .collect();
        match self.select {
            PeerSelect::Broadcast => others,
            PeerSelect::NextInRing => vec![ProcessId(((me + 1) % self.n) as u32)],
            PeerSelect::Random => {
                let k = ctx.rand_below(others.len() as u64) as usize;
                vec![others[k]]
            }
        }
    }

    fn apply(&mut self, actions: Vec<FtAction>, ctx: &mut Ctx<'_, FtMsg>) {
        for a in actions {
            match a {
                FtAction::Send { to, msg } => ctx.send(to, msg),
                FtAction::Grant => {
                    ctx.trace_end("blocked");
                    self.enter_false(ctx);
                }
                FtAction::Arm { kind, delay } => {
                    if self.finished {
                        // A finished process stops its chains so the run
                        // can quiesce; it still answers messages.
                        continue;
                    }
                    let id = ctx.set_timer(delay);
                    self.ctrl_timers.insert(id.0, kind);
                }
            }
        }
    }

    fn enter_false(&mut self, ctx: &mut Ctx<'_, FtMsg>) {
        if let Some(at) = self.requested_at.take() {
            ctx.record("response", ctx.now().since(at));
        }
        ctx.count("entries", 1);
        ctx.step(&[("ok", 0)]);
        if let Some(len) = self.current_false_len {
            ctx.set_timer(len);
        }
    }

    fn begin_next_phase(&mut self, ctx: &mut Ctx<'_, FtMsg>) {
        match self.script.pop_front() {
            Some(ph) => {
                self.current_false_len = ph.false_len;
                ctx.set_timer(ph.true_len);
            }
            None => {
                self.finished = true;
                ctx.set_done();
            }
        }
    }

    fn ctrl_timer(&mut self, kind: FtTimerKind, ctx: &mut Ctx<'_, FtMsg>) {
        let was_scapegoat = self.ctrl.is_scapegoat();
        let actions = self.ctrl.on_timer(kind);
        match kind {
            FtTimerKind::Retransmit => {
                let sends = actions
                    .iter()
                    .filter(|a| matches!(a, FtAction::Send { .. }))
                    .count();
                if sends > 0 {
                    ctx.count("retransmissions", sends as u64);
                    ctx.trace_instant("retransmit");
                }
            }
            FtTimerKind::Watchdog => {
                if !was_scapegoat && self.ctrl.is_scapegoat() {
                    ctx.count("regenerations", 1);
                    ctx.trace_instant("watchdog_regenerated");
                } else if ctx.recording() && !self.ctrl.is_scapegoat() {
                    ctx.trace_instant("watchdog_tick");
                }
            }
            FtTimerKind::Heartbeat => {}
        }
        self.apply(actions, ctx);
    }
}

impl Process<FtMsg> for FtPhasedProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, FtMsg>) {
        ctx.init_var("ok", 1);
        let actions = self.ctrl.start();
        self.apply(actions, ctx);
        self.begin_next_phase(ctx);
    }

    fn on_message(&mut self, _from: ProcessId, msg: FtMsg, ctx: &mut Ctx<'_, FtMsg>) {
        let had_role = self.ctrl.is_scapegoat();
        let actions = self.ctrl.on_message(msg);
        if ctx.recording() && self.ctrl.is_scapegoat() != had_role {
            ctx.trace_instant(if self.ctrl.is_scapegoat() {
                "scapegoat_acquired"
            } else {
                "scapegoat_released"
            });
        }
        self.apply(actions, ctx);
    }

    fn on_timer(&mut self, t: TimerId, ctx: &mut Ctx<'_, FtMsg>) {
        if let Some(kind) = self.ctrl_timers.remove(&t.0) {
            self.ctrl_timer(kind, ctx);
            return;
        }
        if self.finished {
            return;
        }
        if ctx.var("ok") == Some(1) {
            if self.ctrl.is_blocked() {
                // A stale phase timer can fire while blocked if a crash
                // interleaved; ignore, the grant path resumes the script.
                return;
            }
            self.requested_at = Some(ctx.now());
            let peers = self.peers(ctx);
            match self.ctrl.request_false(&peers) {
                FtDecision::Granted => self.enter_false(ctx),
                FtDecision::Blocked(actions) => {
                    ctx.trace_begin("blocked");
                    self.apply(actions, ctx);
                }
            }
        } else {
            ctx.step(&[("ok", 1)]);
            let had_role = self.ctrl.is_scapegoat();
            let actions = self.ctrl.notify_true();
            if ctx.recording() && !had_role && self.ctrl.is_scapegoat() {
                ctx.trace_instant("scapegoat_acquired");
            }
            self.apply(actions, ctx);
            self.begin_next_phase(ctx);
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, FtMsg>) {
        // All pre-crash timers are stale; forget their routing.
        self.ctrl_timers.clear();
        self.requested_at = None;
        // A crash may have interrupted an open "blocked" span; close it so
        // the exported timeline stays balanced.
        if self.ctrl.is_blocked() {
            ctx.trace_end("blocked");
        }
        // Come back predicate-true before sending anything (acks must be
        // sent from a true state), then rejoin as a scapegoat.
        if ctx.var("ok") == Some(0) {
            ctx.step(&[("ok", 1)]);
        }
        let actions = self.ctrl.rejoin();
        self.apply(actions, ctx);
        ctx.count("rejoins", 1);
        ctx.trace_instant("rejoin");
        if self.finished {
            ctx.set_done();
        } else {
            // The interrupted phase is abandoned; resume with the next one.
            self.begin_next_phase(ctx);
        }
    }
}

/// Build a ready-to-run hardened process vector; process 0 starts as
/// scapegoat.
pub fn ft_phased_system(
    n: usize,
    scripts: Vec<Vec<Phase>>,
    select: PeerSelect,
    params: FtParams,
) -> Vec<Box<dyn Process<FtMsg>>> {
    assert_eq!(scripts.len(), n);
    scripts
        .into_iter()
        .enumerate()
        .map(|(i, script)| {
            Box::new(FtPhasedProcess::new(
                ProcessId(i as u32),
                n,
                i == 0,
                select,
                params,
                script,
            )) as Box<dyn Process<FtMsg>>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::sweep_faulty_run;
    use pctl_deposet::LocalPredicate;
    use pctl_sim::{DelayModel, FaultPlan, SimConfig, Simulation};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn sends(actions: &[FtAction]) -> Vec<(ProcessId, FtMsg)> {
        actions
            .iter()
            .filter_map(|a| match a {
                FtAction::Send { to, msg } => Some((*to, *msg)),
                _ => None,
            })
            .collect()
    }

    fn arms(actions: &[FtAction]) -> Vec<(FtTimerKind, u64)> {
        actions
            .iter()
            .filter_map(|a| match a {
                FtAction::Arm { kind, delay } => Some((*kind, *delay)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn retransmission_backs_off_exponentially_and_escalates() {
        let params = FtParams {
            rto_initial: 10,
            rto_max: 35,
            escalate_after: 2,
            ..FtParams::default()
        };
        let mut c = FtController::new(p(0), 4, true, params);
        let FtDecision::Blocked(a) = c.request_false(&[p(1)]) else {
            panic!("must block")
        };
        assert_eq!(sends(&a), vec![(p(1), FtMsg::Req { from: p(0), seq: 1 })]);
        assert_eq!(arms(&a), vec![(FtTimerKind::Retransmit, 10)]);
        // First two retransmits: same single target, delay doubling.
        let a = c.on_timer(FtTimerKind::Retransmit);
        assert_eq!(sends(&a).len(), 1);
        assert_eq!(arms(&a), vec![(FtTimerKind::Retransmit, 20)]);
        let a = c.on_timer(FtTimerKind::Retransmit);
        assert_eq!(sends(&a).len(), 1);
        assert_eq!(
            arms(&a),
            vec![(FtTimerKind::Retransmit, 35)],
            "capped at rto_max"
        );
        // Third retransmit escalates: one more peer targeted.
        let a = c.on_timer(FtTimerKind::Retransmit);
        let s = sends(&a);
        assert_eq!(s.len(), 2);
        assert!(
            s.iter().any(|(to, _)| *to == p(2)),
            "escalation adds ring-next peer"
        );
        // Ack ends the request; the chain dies at its next firing.
        assert!(c
            .on_message(FtMsg::Ack { seq: 1 })
            .contains(&FtAction::Grant));
        assert!(sends(&c.on_timer(FtTimerKind::Retransmit)).is_empty());
    }

    #[test]
    fn duplicate_req_is_reacked_but_grants_role_once() {
        let mut c = FtController::new(p(1), 3, false, FtParams::default());
        let a = c.on_message(FtMsg::Req { from: p(0), seq: 4 });
        assert!(c.is_scapegoat());
        assert_eq!(sends(&a), vec![(p(0), FtMsg::Ack { seq: 4 })]);
        // Retransmitted copy: re-acked, no state change, no new arm.
        let a = c.on_message(FtMsg::Req { from: p(0), seq: 4 });
        assert_eq!(
            a,
            vec![FtAction::Send {
                to: p(0),
                msg: FtMsg::Ack { seq: 4 }
            }]
        );
        // Even after handing the role off, the old seq is still re-acked.
        let FtDecision::Blocked(_) = c.request_false(&[p(2)]) else {
            panic!()
        };
        let _ = c.on_message(FtMsg::Ack { seq: 1 });
        assert!(!c.is_scapegoat());
        let a = c.on_message(FtMsg::Req { from: p(0), seq: 4 });
        assert_eq!(sends(&a), vec![(p(0), FtMsg::Ack { seq: 4 })]);
        assert!(!c.is_scapegoat(), "re-ack must not re-grant the role");
    }

    #[test]
    fn stale_and_duplicate_acks_are_inert() {
        let mut c = FtController::new(p(0), 3, true, FtParams::default());
        let _ = c.request_false(&[p(1), p(2)]);
        assert!(
            c.on_message(FtMsg::Ack { seq: 99 }).is_empty(),
            "wrong seq ignored"
        );
        assert!(c
            .on_message(FtMsg::Ack { seq: 1 })
            .contains(&FtAction::Grant));
        assert!(
            c.on_message(FtMsg::Ack { seq: 1 }).is_empty(),
            "duplicate ignored"
        );
    }

    #[test]
    fn watchdog_regenerates_after_silence_only_when_true() {
        let mut c = FtController::new(p(2), 3, false, FtParams::default());
        let a = c.start();
        // Watchdog armed with the staggered delay.
        let w = FtParams::default().watch_timeout + 2 * FtParams::default().watch_stagger;
        assert_eq!(arms(&a), vec![(FtTimerKind::Watchdog, w)]);
        // Heartbeat heard: watchdog re-arms, no regeneration.
        let _ = c.on_message(FtMsg::Heartbeat {
            from: p(0),
            epoch: 0,
        });
        let a = c.on_timer(FtTimerKind::Watchdog);
        assert_eq!(arms(&a), vec![(FtTimerKind::Watchdog, w)]);
        assert!(!c.is_scapegoat());
        // Silence while false: keep watching, do not take the liability.
        let FtDecision::Granted = c.request_false(&[p(0)]) else {
            panic!()
        };
        let a = c.on_timer(FtTimerKind::Watchdog);
        assert_eq!(arms(&a), vec![(FtTimerKind::Watchdog, w)]);
        assert!(!c.is_scapegoat());
        // Silence while true: regenerate and start heartbeating.
        let _ = c.notify_true();
        let a = c.on_timer(FtTimerKind::Watchdog);
        assert!(c.is_scapegoat());
        assert_eq!(c.epoch(), 1);
        assert_eq!(
            arms(&a),
            vec![(FtTimerKind::Heartbeat, FtParams::default().heartbeat_every)]
        );
    }

    #[test]
    fn rejoin_is_conservative_and_answers_deferred_requests() {
        let mut c = FtController::new(p(1), 3, false, FtParams::default());
        // Go false, defer a request, then "crash" and rejoin.
        let FtDecision::Granted = c.request_false(&[p(0)]) else {
            panic!()
        };
        assert!(c.on_message(FtMsg::Req { from: p(2), seq: 7 }).is_empty());
        let a = c.rejoin();
        assert!(c.is_scapegoat(), "restarted process assumes the role");
        assert!(!c.is_blocked());
        assert_eq!(sends(&a), vec![(p(2), FtMsg::Ack { seq: 7 })]);
        assert!(arms(&a).iter().any(|(k, _)| *k == FtTimerKind::Heartbeat));
    }

    fn uniform_scripts(n: usize, phases: usize, true_len: u64, false_len: u64) -> Vec<Vec<Phase>> {
        (0..n)
            .map(|i| {
                (0..phases)
                    .map(|k| Phase {
                        true_len: true_len + (i as u64) * 3 + (k as u64 % 2),
                        false_len: Some(false_len),
                    })
                    .collect()
            })
            .collect()
    }

    fn run_ft(
        n: usize,
        phases: usize,
        select: PeerSelect,
        seed: u64,
        faults: FaultPlan,
    ) -> pctl_sim::SimResult {
        let procs = ft_phased_system(
            n,
            uniform_scripts(n, phases, 20, 10),
            select,
            FtParams::default(),
        );
        let config = SimConfig {
            seed,
            delay: DelayModel::Fixed(5),
            faults,
            ..SimConfig::default()
        };
        Simulation::new(config, procs).run()
    }

    #[test]
    fn fault_free_ft_runs_complete_and_stay_safe() {
        for seed in 0..4 {
            let r = run_ft(3, 3, PeerSelect::NextInRing, seed, FaultPlan::none());
            assert!(!r.deadlocked(), "seed {seed}");
            let report = sweep_faulty_run(&r.deposet, &LocalPredicate::var("ok"));
            assert!(report.fully_safe(), "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn survives_message_loss_without_violating_b() {
        // 15% loss on every link: retransmission + re-ack must still drive
        // every handover to completion, and safety must hold on every
        // consistent cut (loss alone never breaks B — only crashes can).
        for seed in 0..10 {
            let r = run_ft(
                3,
                3,
                PeerSelect::NextInRing,
                seed,
                FaultPlan::uniform_loss(0.15),
            );
            assert!(!r.deadlocked(), "seed {seed}");
            assert_eq!(r.stopped, pctl_sim::StopReason::Quiescent, "seed {seed}");
            let report = sweep_faulty_run(&r.deposet, &LocalPredicate::var("ok"));
            assert!(report.fully_safe(), "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn crashed_scapegoat_is_regenerated_and_run_completes() {
        // P0 starts as scapegoat and crashes at t=10, before its first
        // handover attempt — the anti-token dies with it. The watchdog must
        // regenerate it, P0 rejoins conservatively, and any B-violation is
        // confined to cuts where P0 is down.
        let mut seen_regeneration = false;
        for seed in 0..6 {
            let faults = FaultPlan::none().with_crash(p(0), pctl_sim::SimTime(10), Some(300));
            let r = run_ft(3, 3, PeerSelect::NextInRing, seed, faults);
            assert!(!r.deadlocked(), "seed {seed}");
            let report = sweep_faulty_run(&r.deposet, &LocalPredicate::var("ok"));
            assert!(report.safe_modulo_crashes(), "seed {seed}: {report:?}");
            assert!(
                !report.down_windows.is_empty(),
                "seed {seed}: crash must be visible"
            );
            seen_regeneration |= r.metrics.counter("regenerations") > 0;
            assert_eq!(r.metrics.counter("rejoins"), 1, "seed {seed}");
        }
        assert!(seen_regeneration, "no seed exercised watchdog regeneration");
    }

    #[test]
    fn dead_peer_cannot_block_a_handover_forever() {
        // P1 crashes and never restarts; P0 (scapegoat) requests P1 in ring
        // order. Escalation must re-target P2 so the handover completes.
        let faults = FaultPlan::none().with_crash(p(1), pctl_sim::SimTime(5), None);
        let procs = ft_phased_system(
            3,
            vec![
                vec![Phase {
                    true_len: 40,
                    false_len: Some(10),
                }],
                vec![],
                vec![Phase {
                    true_len: 30,
                    false_len: Some(10),
                }],
            ],
            PeerSelect::NextInRing,
            FtParams::default(),
        );
        let config = SimConfig {
            seed: 0,
            delay: DelayModel::Fixed(5),
            faults,
            ..SimConfig::default()
        };
        let r = Simulation::new(config, procs).run();
        // P1 is down forever so it never reports done, but P0 and P2 must
        // both finish their scripts (quiescence alone is not enough).
        assert!(
            r.done[0],
            "P0 finished despite its ring-next peer being dead"
        );
        assert!(r.done[2]);
        assert!(
            r.metrics.counter("retransmissions") > 0,
            "escalation path exercised"
        );
        let report = sweep_faulty_run(&r.deposet, &LocalPredicate::var("ok"));
        assert!(report.safe_modulo_crashes(), "{report:?}");
    }

    #[test]
    fn loss_duplication_and_reordering_together() {
        use pctl_sim::LinkFaults;
        for seed in 0..5 {
            let faults = FaultPlan {
                default_link: LinkFaults {
                    drop_p: 0.1,
                    dup_p: 0.1,
                    extra_delay_max: 15,
                },
                ..FaultPlan::default()
            };
            let r = run_ft(4, 2, PeerSelect::Broadcast, seed, faults);
            assert!(!r.deadlocked(), "seed {seed}");
            let report = sweep_faulty_run(&r.deposet, &LocalPredicate::var("ok"));
            assert!(report.fully_safe(), "seed {seed}: {report:?}");
        }
    }
}
