//! The streaming engine: [`PredicateEngine`]'s query surface over a
//! *growing* per-session store.
//!
//! A batch [`PredicateEngine`](crate::engine::PredicateEngine) is built once
//! over an immutable [`Deposet`] and an eagerly-derived `IntervalIndex`. A
//! [`StreamEngine`] instead owns a [`SessionStore`] that accepts appends one
//! event at a time (amortized O(n) each — see `pctl_deposet::session`) and
//! answers the same four questions at any prefix:
//!
//! * [`detect_violation`](StreamEngine::detect_violation) — weak detection
//!   of `possibly(∧ᵢ ¬lᵢ)` with candidate queues read off the incremental
//!   truth columns;
//! * [`control`](StreamEngine::control) — the paper's Figure 2 algorithm
//!   over the incrementally-grown false intervals;
//! * [`infeasibility_witness`](StreamEngine::infeasibility_witness) — the
//!   Lemma 2 overlap search;
//! * [`verify`](StreamEngine::verify) — exhaustive relation soundness, via
//!   an honest batch [`snapshot`](StreamEngine::snapshot) (verification is
//!   lattice-exhaustive anyway, so a rebuild is not the bottleneck).
//!
//! All query paths call the *same monomorphised generic code* as the batch
//! engine ([`CausalStore`]-typed control, detection and overlap search), so
//! answers are bit-identical to a fresh `PredicateEngine` built over the
//! same prefix — the invariant `tests/streaming_prefix.rs` pins down per
//! append. This is what lets the daemon serve detect/control queries
//! mid-stream without ever rebuilding the computation.

use crate::control::ControlRelation;
use crate::offline::{control_intervals, Infeasible, OfflineOptions, OfflineStats};
use crate::verify::{verify_disjunctive, verify_regular, VerifyError};
use pctl_deposet::store;
use pctl_deposet::{
    AppendOp, CausalStore, ClassError, Deposet, DisjunctivePredicate, GlobalState, Interval,
    LocalPredicate, PredicateClass, ProcessId, RegularPredicate, SessionError, SessionStore,
    SlicedDeposet,
};

/// Memoized query results for one store version (`appended_ops`). Every
/// slot is filled lazily on first use and dropped wholesale when the store
/// grows — queries between appends are answered without recomputing
/// anything (the ROADMAP's PR-6 follow-up).
#[derive(Default)]
struct QueryCache {
    version: u64,
    detect: Option<Option<GlobalState>>,
    control: Option<(
        OfflineOptions,
        Result<ControlRelation, Infeasible>,
        OfflineStats,
    )>,
    witness: Option<Option<Vec<Interval>>>,
    slice: Option<SlicedDeposet>,
}

/// A growing computation + predicate class, answering the batch engine's
/// queries at every prefix, with per-prefix query memoization.
///
/// Owns its [`SessionStore`] — in the daemon, one `StreamEngine` *is* one
/// session. Query methods take `&mut self` purely for the cache; the
/// store itself is only mutated by [`apply`](Self::apply).
pub struct StreamEngine {
    store: SessionStore,
    /// `None` = plain disjunctive session from raw locals (the historical
    /// constructor path); `Some` = explicit class, possibly regular.
    class: Option<PredicateClass>,
    cache: QueryCache,
    cache_hits: u64,
}

impl StreamEngine {
    /// Start an empty session over the disjunction of `locals` (one local
    /// predicate per process), with every process in its initial state and
    /// no variables assigned.
    pub fn new(locals: Vec<LocalPredicate>) -> Self {
        Self::wrap(SessionStore::new(locals), None)
    }

    /// Like [`new`](Self::new), but seed each process's initial state with
    /// explicit variable assignments.
    ///
    /// # Panics
    /// Panics if `init.len()` differs from the predicate arity.
    pub fn new_with_init(locals: Vec<LocalPredicate>, init: &[Vec<(String, i64)>]) -> Self {
        Self::wrap(SessionStore::new_with_init(locals, init), None)
    }

    /// Start an empty session for any [`PredicateClass`]. The session
    /// store's truth columns are seeded with
    /// [`PredicateClass::session_locals`], so regular classes get their
    /// conjunct truth maintained incrementally (the slicer reads it as
    /// `!truth`) and disjunctive classes behave exactly like
    /// [`new_with_init`](Self::new_with_init).
    pub fn for_class(
        class: PredicateClass,
        init: Option<&[Vec<(String, i64)>]>,
    ) -> Result<Self, ClassError> {
        class.validate(class.arity())?;
        let locals = class.session_locals();
        let store = match init {
            Some(init) => SessionStore::new_with_init(locals, init),
            None => SessionStore::new(locals),
        };
        Ok(Self::wrap(store, Some(class)))
    }

    /// Wrap an already-populated store.
    pub fn from_store(store: SessionStore) -> Self {
        Self::wrap(store, None)
    }

    fn wrap(store: SessionStore, class: Option<PredicateClass>) -> Self {
        StreamEngine {
            store,
            class,
            cache: QueryCache::default(),
            cache_hits: 0,
        }
    }

    /// Append one event. On error the store is unchanged.
    pub fn apply(&mut self, op: &AppendOp) -> Result<(), SessionError> {
        let _prof = pctl_prof::span("stream_apply");
        self.store.apply(op)
    }

    /// The underlying growing store.
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// The predicate class this session answers queries for.
    pub fn predicate_class(&self) -> PredicateClass {
        self.class.clone().unwrap_or_else(|| {
            PredicateClass::disjunctive(DisjunctivePredicate::new(self.store.locals().to_vec()))
        })
    }

    /// Queries answered from the memo cache since the session opened.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// The predicate under control/detection, rebuilt from the registered
    /// locals. For a regular-class session these are the *session locals*
    /// (`¬conjᵢ`), not user-facing disjuncts — prefer
    /// [`predicate_class`](Self::predicate_class).
    pub fn predicate(&self) -> DisjunctivePredicate {
        DisjunctivePredicate::new(self.store.locals().to_vec())
    }

    /// Drop the cache if the store has grown past the cached version.
    fn refresh(&mut self) {
        let v = self.store.appended_ops();
        if self.cache.version != v {
            self.cache = QueryCache {
                version: v,
                ..QueryCache::default()
            };
        }
    }

    /// The regular violation, if this is a regular-class session.
    fn regular_violation(&self) -> Option<RegularPredicate> {
        match &self.class {
            Some(PredicateClass::Regular { violation, .. }) => Some(violation.clone()),
            _ => None,
        }
    }

    /// Fill `cache.slice` for the current prefix if absent. Conjunct truth
    /// is read straight off the incremental truth columns (`conj = !truth`,
    /// see [`PredicateClass::session_locals`]); channel constraints read
    /// the live message table, so in-flight sends are modelled exactly.
    fn ensure_slice(&mut self, violation: &RegularPredicate) {
        if self.cache.slice.is_some() {
            return;
        }
        let _prof = pctl_prof::span("stream_slice_build");
        let n = self.store.process_count();
        let conj: Vec<Vec<bool>> = (0..n)
            .map(|p| {
                self.store
                    .truths_of(ProcessId(p as u32))
                    .iter()
                    .map(|&t| !t)
                    .collect()
            })
            .collect();
        let (mut delivered, mut in_flight) = (Vec::new(), Vec::new());
        if violation.uses_channels() {
            for (from, to) in self.store.message_endpoints() {
                match to {
                    Some(to) => delivered.push((from, to)),
                    None => in_flight.push(from),
                }
            }
        }
        self.cache.slice = Some(SlicedDeposet::build_from_parts(
            &self.store,
            &conj,
            &delivered,
            &in_flight,
        ));
    }

    /// Run the off-line control algorithm over the incrementally-grown
    /// intervals of the current prefix (memoized per prefix + options).
    pub fn control(&mut self, opts: OfflineOptions) -> Result<ControlRelation, Infeasible> {
        self.control_with_stats(opts).0
    }

    /// [`control`](Self::control), also returning operation counts.
    pub fn control_with_stats(
        &mut self,
        opts: OfflineOptions,
    ) -> (Result<ControlRelation, Infeasible>, OfflineStats) {
        self.refresh();
        if let Some((o, r, st)) = &self.cache.control {
            if *o == opts {
                self.cache_hits += 1;
                return (r.clone(), *st);
            }
        }
        let _prof = pctl_prof::span("stream_control");
        let out = match self.regular_violation() {
            Some(v) => {
                self.ensure_slice(&v);
                let slice = self.cache.slice.as_ref().expect("just filled");
                control_intervals(&self.store, slice.frontier_intervals(), opts)
            }
            None => control_intervals(&self.store, self.store.intervals(), opts),
        };
        self.cache.control = Some((opts, out.0.clone(), out.1));
        out
    }

    /// Strong detection at the current prefix: a pairwise-overlapping set
    /// of intervals (Lemma 2), `Some` iff no interval controller exists.
    /// Memoized per prefix.
    pub fn infeasibility_witness(&mut self) -> Option<Vec<Interval>> {
        self.refresh();
        if let Some(w) = &self.cache.witness {
            self.cache_hits += 1;
            return w.clone();
        }
        let _prof = pctl_prof::span("stream_infeasibility");
        let out = match self.regular_violation() {
            Some(v) => {
                self.ensure_slice(&v);
                let slice = self.cache.slice.as_ref().expect("just filled");
                store::find_overlap(&self.store, slice.frontier_intervals())
            }
            None => store::find_overlap(&self.store, self.store.intervals()),
        };
        self.cache.witness = Some(out.clone());
        out
    }

    /// Weak detection at the current prefix: the earliest consistent cut
    /// where every local predicate is false (disjunctive), or the slice's
    /// least satisfying cut (regular). Candidate truth is read off the
    /// incremental columns — no predicate re-evaluation. Memoized per
    /// prefix.
    pub fn detect_violation(&mut self) -> Option<GlobalState> {
        self.refresh();
        if let Some(d) = &self.cache.detect {
            self.cache_hits += 1;
            return d.clone();
        }
        let _prof = pctl_prof::span("stream_detect_violation");
        let out = match self.regular_violation() {
            Some(v) => {
                self.ensure_slice(&v);
                self.cache
                    .slice
                    .as_ref()
                    .expect("just filled")
                    .min_cut()
                    .cloned()
            }
            None => {
                let n = self.store.process_count();
                let queues: Vec<Vec<u32>> = (0..n)
                    .map(|p| {
                        self.store
                            .truths_of(ProcessId(p as u32))
                            .iter()
                            .enumerate()
                            .filter(|&(_, &t)| !t)
                            .map(|(k, _)| k as u32)
                            .collect()
                    })
                    .collect();
                pctl_detect::possibly_from_queues(&self.store, &queues)
            }
        };
        self.cache.detect = Some(out.clone());
        out
    }

    /// Exhaustively verify `rel` against the current prefix (bounded by
    /// `limit` visited cuts). Runs over a batch snapshot: in-flight sends
    /// are demoted to internal events, which leaves clocks — and therefore
    /// the verified ordering — unchanged. (A regular-class session with
    /// channel terms is verified against that same snapshot view, i.e.
    /// with the still-in-flight sends not counted as channel contents.)
    pub fn verify(&self, rel: &ControlRelation, limit: usize) -> Result<(), VerifyError> {
        let _prof = pctl_prof::span("stream_verify");
        let dep = self.snapshot();
        match self.regular_violation() {
            Some(v) => verify_regular(&dep, &v, rel, limit),
            None => verify_disjunctive(&dep, &self.predicate(), rel, limit),
        }
    }

    /// An immutable batch view of the current prefix (undelivered sends
    /// rewritten to internal events, delivered messages densely renumbered).
    ///
    /// # Panics
    /// Panics if the store's invariants were violated — impossible through
    /// the public [`apply`](Self::apply) path; in the daemon a panic here
    /// poisons only the owning session.
    pub fn snapshot(&self) -> Deposet {
        let _prof = pctl_prof::span("stream_snapshot");
        self.store
            .snapshot()
            .expect("session store invariants guarantee a valid snapshot")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PredicateEngine;
    use pctl_deposet::generator::{random_deposet, RandomConfig};
    use pctl_deposet::linearize;

    fn replayed(dep: &Deposet, locals: Vec<LocalPredicate>) -> StreamEngine {
        let (init, ops) = linearize(dep);
        let mut eng = StreamEngine::new_with_init(locals, &init);
        for op in &ops {
            eng.apply(op).unwrap();
        }
        eng
    }

    #[test]
    fn final_prefix_matches_batch_engine_on_random_traces() {
        for seed in 0..25 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 24,
                    ..RandomConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            let mut stream = replayed(&dep, pred.locals().to_vec());
            let batch = PredicateEngine::new(&dep, pred);
            let opts = OfflineOptions::default();
            assert_eq!(
                stream.detect_violation(),
                batch.detect_violation(),
                "seed {seed}"
            );
            assert_eq!(stream.control(opts), batch.control(opts), "seed {seed}");
            assert_eq!(
                stream.infeasibility_witness(),
                batch.infeasibility_witness(),
                "seed {seed}"
            );
            assert_eq!(stream.store().intervals(), batch.intervals(), "seed {seed}");
            if let Ok(rel) = stream.control(opts) {
                assert!(stream.verify(&rel, 500_000).is_ok(), "seed {seed}");
            }
        }
    }

    #[test]
    fn verify_agrees_with_batch_on_the_snapshot() {
        for seed in 0..8 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 16,
                    ..RandomConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            let mut stream = replayed(&dep, pred.locals().to_vec());
            if let Ok(rel) = stream.control(OfflineOptions::default()) {
                let batch = PredicateEngine::new(&dep, pred);
                assert_eq!(
                    stream.verify(&rel, 500_000).is_ok(),
                    batch.verify(&rel, 500_000).is_ok(),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn empty_session_is_trivially_controllable() {
        let mut eng = StreamEngine::new(vec![LocalPredicate::var("ok"), LocalPredicate::var("ok")]);
        // Both initial states have `ok` unset (false): a 2-process overlap.
        assert!(eng.detect_violation().is_some());
        assert!(eng.infeasibility_witness().is_some());
        assert!(eng.control(OfflineOptions::default()).is_err());
        let mut eng2 = StreamEngine::new_with_init(
            vec![LocalPredicate::var("ok"), LocalPredicate::var("ok")],
            &[vec![("ok".to_string(), 1)], vec![("ok".to_string(), 0)]],
        );
        assert_eq!(eng2.detect_violation(), None);
        let rel = eng2.control(OfflineOptions::default()).unwrap();
        assert!(eng2.verify(&rel, 1000).is_ok());
    }
}
