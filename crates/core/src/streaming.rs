//! The streaming engine: [`PredicateEngine`]'s query surface over a
//! *growing* per-session store.
//!
//! A batch [`PredicateEngine`](crate::engine::PredicateEngine) is built once
//! over an immutable [`Deposet`] and an eagerly-derived `IntervalIndex`. A
//! [`StreamEngine`] instead owns a [`SessionStore`] that accepts appends one
//! event at a time (amortized O(n) each — see `pctl_deposet::session`) and
//! answers the same four questions at any prefix:
//!
//! * [`detect_violation`](StreamEngine::detect_violation) — weak detection
//!   of `possibly(∧ᵢ ¬lᵢ)` with candidate queues read off the incremental
//!   truth columns;
//! * [`control`](StreamEngine::control) — the paper's Figure 2 algorithm
//!   over the incrementally-grown false intervals;
//! * [`infeasibility_witness`](StreamEngine::infeasibility_witness) — the
//!   Lemma 2 overlap search;
//! * [`verify`](StreamEngine::verify) — exhaustive relation soundness, via
//!   an honest batch [`snapshot`](StreamEngine::snapshot) (verification is
//!   lattice-exhaustive anyway, so a rebuild is not the bottleneck).
//!
//! All query paths call the *same monomorphised generic code* as the batch
//! engine ([`CausalStore`]-typed control, detection and overlap search), so
//! answers are bit-identical to a fresh `PredicateEngine` built over the
//! same prefix — the invariant `tests/streaming_prefix.rs` pins down per
//! append. This is what lets the daemon serve detect/control queries
//! mid-stream without ever rebuilding the computation.

use crate::control::ControlRelation;
use crate::offline::{control_intervals, Infeasible, OfflineOptions, OfflineStats};
use crate::verify::{verify_disjunctive, VerifyError};
use pctl_deposet::store;
use pctl_deposet::{
    AppendOp, CausalStore, Deposet, DisjunctivePredicate, GlobalState, Interval, LocalPredicate,
    ProcessId, SessionError, SessionStore,
};

/// A growing computation + disjunctive predicate, answering the batch
/// engine's queries at every prefix.
///
/// Owns its [`SessionStore`] — in the daemon, one `StreamEngine` *is* one
/// session.
pub struct StreamEngine {
    store: SessionStore,
}

impl StreamEngine {
    /// Start an empty session over the disjunction of `locals` (one local
    /// predicate per process), with every process in its initial state and
    /// no variables assigned.
    pub fn new(locals: Vec<LocalPredicate>) -> Self {
        StreamEngine {
            store: SessionStore::new(locals),
        }
    }

    /// Like [`new`](Self::new), but seed each process's initial state with
    /// explicit variable assignments.
    ///
    /// # Panics
    /// Panics if `init.len()` differs from the predicate arity.
    pub fn new_with_init(locals: Vec<LocalPredicate>, init: &[Vec<(String, i64)>]) -> Self {
        StreamEngine {
            store: SessionStore::new_with_init(locals, init),
        }
    }

    /// Wrap an already-populated store.
    pub fn from_store(store: SessionStore) -> Self {
        StreamEngine { store }
    }

    /// Append one event. On error the store is unchanged.
    pub fn apply(&mut self, op: &AppendOp) -> Result<(), SessionError> {
        let _prof = pctl_prof::span("stream_apply");
        self.store.apply(op)
    }

    /// The underlying growing store.
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// The predicate under control/detection, rebuilt from the registered
    /// locals.
    pub fn predicate(&self) -> DisjunctivePredicate {
        DisjunctivePredicate::new(self.store.locals().to_vec())
    }

    /// Run the off-line control algorithm over the incrementally-grown
    /// intervals of the current prefix.
    pub fn control(&self, opts: OfflineOptions) -> Result<ControlRelation, Infeasible> {
        self.control_with_stats(opts).0
    }

    /// [`control`](Self::control), also returning operation counts.
    pub fn control_with_stats(
        &self,
        opts: OfflineOptions,
    ) -> (Result<ControlRelation, Infeasible>, OfflineStats) {
        let _prof = pctl_prof::span("stream_control");
        control_intervals(&self.store, self.store.intervals(), opts)
    }

    /// Strong detection at the current prefix: a pairwise-overlapping set
    /// of false intervals (Lemma 2), `Some` iff no controller exists.
    pub fn infeasibility_witness(&self) -> Option<Vec<Interval>> {
        let _prof = pctl_prof::span("stream_infeasibility");
        store::find_overlap(&self.store, self.store.intervals())
    }

    /// Weak detection at the current prefix: the earliest consistent cut
    /// where every local predicate is false. Candidate queues are read off
    /// the incremental truth columns — no predicate re-evaluation.
    pub fn detect_violation(&self) -> Option<GlobalState> {
        let _prof = pctl_prof::span("stream_detect_violation");
        let n = self.store.process_count();
        let queues: Vec<Vec<u32>> = (0..n)
            .map(|p| {
                self.store
                    .truths_of(ProcessId(p as u32))
                    .iter()
                    .enumerate()
                    .filter(|&(_, &t)| !t)
                    .map(|(k, _)| k as u32)
                    .collect()
            })
            .collect();
        pctl_detect::possibly_from_queues(&self.store, &queues)
    }

    /// Exhaustively verify `rel` against the current prefix (bounded by
    /// `limit` visited cuts). Runs over a batch snapshot: in-flight sends
    /// are demoted to internal events, which leaves clocks — and therefore
    /// the verified ordering — unchanged.
    pub fn verify(&self, rel: &ControlRelation, limit: usize) -> Result<(), VerifyError> {
        let _prof = pctl_prof::span("stream_verify");
        let dep = self.snapshot();
        verify_disjunctive(&dep, &self.predicate(), rel, limit)
    }

    /// An immutable batch view of the current prefix (undelivered sends
    /// rewritten to internal events, delivered messages densely renumbered).
    ///
    /// # Panics
    /// Panics if the store's invariants were violated — impossible through
    /// the public [`apply`](Self::apply) path; in the daemon a panic here
    /// poisons only the owning session.
    pub fn snapshot(&self) -> Deposet {
        let _prof = pctl_prof::span("stream_snapshot");
        self.store
            .snapshot()
            .expect("session store invariants guarantee a valid snapshot")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PredicateEngine;
    use pctl_deposet::generator::{random_deposet, RandomConfig};
    use pctl_deposet::linearize;

    fn replayed(dep: &Deposet, locals: Vec<LocalPredicate>) -> StreamEngine {
        let (init, ops) = linearize(dep);
        let mut eng = StreamEngine::new_with_init(locals, &init);
        for op in &ops {
            eng.apply(op).unwrap();
        }
        eng
    }

    #[test]
    fn final_prefix_matches_batch_engine_on_random_traces() {
        for seed in 0..25 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 24,
                    ..RandomConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            let stream = replayed(&dep, pred.locals().to_vec());
            let batch = PredicateEngine::new(&dep, pred);
            let opts = OfflineOptions::default();
            assert_eq!(
                stream.detect_violation(),
                batch.detect_violation(),
                "seed {seed}"
            );
            assert_eq!(stream.control(opts), batch.control(opts), "seed {seed}");
            assert_eq!(
                stream.infeasibility_witness(),
                batch.infeasibility_witness(),
                "seed {seed}"
            );
            assert_eq!(stream.store().intervals(), batch.intervals(), "seed {seed}");
            if let Ok(rel) = stream.control(opts) {
                assert!(stream.verify(&rel, 500_000).is_ok(), "seed {seed}");
            }
        }
    }

    #[test]
    fn verify_agrees_with_batch_on_the_snapshot() {
        for seed in 0..8 {
            let dep = random_deposet(
                &RandomConfig {
                    processes: 3,
                    events: 16,
                    ..RandomConfig::default()
                },
                seed,
            );
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            let stream = replayed(&dep, pred.locals().to_vec());
            if let Ok(rel) = stream.control(OfflineOptions::default()) {
                let batch = PredicateEngine::new(&dep, pred);
                assert_eq!(
                    stream.verify(&rel, 500_000).is_ok(),
                    batch.verify(&rel, 500_000).is_ok(),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn empty_session_is_trivially_controllable() {
        let eng = StreamEngine::new(vec![LocalPredicate::var("ok"), LocalPredicate::var("ok")]);
        // Both initial states have `ok` unset (false): a 2-process overlap.
        assert!(eng.detect_violation().is_some());
        assert!(eng.infeasibility_witness().is_some());
        assert!(eng.control(OfflineOptions::default()).is_err());
        let eng2 = StreamEngine::new_with_init(
            vec![LocalPredicate::var("ok"), LocalPredicate::var("ok")],
            &[vec![("ok".to_string(), 1)], vec![("ok".to_string(), 0)]],
        );
        assert_eq!(eng2.detect_violation(), None);
        let rel = eng2.control(OfflineOptions::default()).unwrap();
        assert!(eng2.verify(&rel, 1000).is_ok());
    }
}
