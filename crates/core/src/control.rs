//! Control relations and controlled deposets (paper Section 3).
//!
//! A control relation `C→` ("forced before") is a set of state pairs
//! `(x, y)`: the control system sends a message right after `x` on `x`'s
//! process and blocks `y`'s process right before `y` until that message
//! arrives, so `x` causally precedes `y` in every controlled run.
//!
//! Adding `C→` to a deposet is only meaningful when the *extended causality*
//! `(im ∪ ; ∪ C→)⁺` remains an irreflexive partial order; a relation that
//! creates a cycle *interferes* with `→` and is rejected with the cycle as a
//! diagnostic. A valid combination yields a [`ControlledDeposet`], which
//! supports the same consistency/lattice queries as the base deposet but
//! under extended causality — the controlled computation's global sequences
//! are exactly the base computation's global sequences that respect `C→`.

use pctl_causality::{ClockRef, Dag, ProcessId, StateId};
use pctl_deposet::shard::fill_sharded;
use pctl_deposet::{Deposet, GlobalState, ShardedClocks};
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// An ordered multiset-free list of forced-before pairs `x C→ y`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlRelation {
    pairs: Vec<(StateId, StateId)>,
}

impl ControlRelation {
    /// The empty relation (no control needed).
    pub fn empty() -> Self {
        ControlRelation::default()
    }

    /// Build from explicit pairs, dropping exact duplicates.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (StateId, StateId)>) -> Self {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for p in pairs {
            if seen.insert(p) {
                out.push(p);
            }
        }
        ControlRelation { pairs: out }
    }

    /// Append `x C→ y` (deduplicated).
    pub fn push(&mut self, x: StateId, y: StateId) {
        if !self.pairs.contains(&(x, y)) {
            self.pairs.push((x, y));
        }
    }

    /// The pairs, in insertion order (the algorithm's output queue order).
    pub fn pairs(&self) -> &[(StateId, StateId)] {
        &self.pairs
    }

    /// Number of forced-before tuples — the control-message count, the
    /// paper's `|C|` (one control message per tuple, Section 5 Evaluation).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no control is applied.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Union of two relations (used when composing per-clause controls).
    pub fn merged(&self, other: &ControlRelation) -> ControlRelation {
        ControlRelation::from_pairs(self.pairs.iter().chain(other.pairs.iter()).copied())
    }
}

impl fmt::Display for ControlRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (x, y)) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x} C→ {y}")?;
        }
        write!(f, "}}")
    }
}

/// Why a control relation cannot be applied to a deposet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlError {
    /// A pair references a state outside the computation.
    UnknownState(StateId),
    /// The relation interferes with `→`: extended causality has a cycle
    /// through the listed states.
    Interference {
        /// States on the offending cycle.
        cycle: Vec<StateId>,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::UnknownState(s) => write!(f, "control pair references unknown state {s}"),
            ControlError::Interference { cycle } => {
                write!(
                    f,
                    "control relation interferes with causality; cycle through "
                )?;
                for (i, s) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " → ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ControlError {}

/// A deposet extended with a non-interfering control relation.
///
/// Owns recomputed *extended* vector clocks in a [`ShardedClocks`] store
/// under the base deposet's shard plan (same row layout and `(shard, local
/// row)` addressing as the base store, with the control pairs threaded
/// through the frontier-round DP as extra cross-edges); all queries
/// (`precedes`, consistency, lattice enumeration) are under `C→ ∪ →`.
#[derive(Debug)]
pub struct ControlledDeposet<'a> {
    base: &'a Deposet,
    control: ControlRelation,
    ext_clocks: ShardedClocks,
}

impl<'a> ControlledDeposet<'a> {
    /// Validate `control` against `dep` and compute extended clocks.
    pub fn new(dep: &'a Deposet, control: ControlRelation) -> Result<Self, ControlError> {
        for &(x, y) in control.pairs() {
            if !dep.contains(x) {
                return Err(ControlError::UnknownState(x));
            }
            if !dep.contains(y) {
                return Err(ControlError::UnknownState(y));
            }
        }
        let offsets = dep.offsets();
        let n = dep.process_count();
        let total = offsets[n];
        let mut g = Dag::new(total);
        for p in dep.processes() {
            for k in 0..dep.len_of(p).saturating_sub(1) {
                g.add_edge(offsets[p.index()] + k, offsets[p.index()] + k + 1);
            }
        }
        let node = |s: StateId| offsets[s.process.index()] + s.idx();
        let locate = |v: usize| -> StateId {
            let p = offsets.partition_point(|&o| o <= v) - 1;
            StateId::new(p, (v - offsets[p]) as u32)
        };
        for m in dep.messages() {
            g.add_edge(node(m.from), node(m.to));
        }
        for &(x, y) in control.pairs() {
            g.add_edge(node(x), node(y));
        }
        // The Dag is built purely for cycle *diagnostics* — the sharded
        // fill detects cycles too, but cannot name the offending states.
        g.topo_sort().map_err(|e| ControlError::Interference {
            cycle: e.cycle.iter().map(|&v| locate(v as usize)).collect(),
        })?;
        // Extended Fidge–Mattern clocks under the base deposet's shard
        // plan: the same sharded DP as the base store, with control pairs
        // as extra merge edges (cross-shard ones resolve in the frontier
        // rounds alongside the messages). The Dag pre-check above already
        // rejected cycles with a witness, so the fill cannot fail.
        let mut edges: Vec<(u32, u32)> = dep
            .messages()
            .iter()
            .map(|m| (node(m.to) as u32, node(m.from) as u32))
            .collect();
        edges.extend(
            control
                .pairs()
                .iter()
                .map(|&(x, y)| (node(y) as u32, node(x) as u32)),
        );
        let ext_clocks = fill_sharded(dep.shard_plan(), offsets, &edges)
            .expect("extended causality is acyclic (checked above)");
        assert_eq!(ext_clocks.total_allocated_words(), n * total);
        Ok(ControlledDeposet {
            base: dep,
            control,
            ext_clocks,
        })
    }

    /// The underlying computation.
    pub fn base(&self) -> &Deposet {
        self.base
    }

    /// The applied control relation.
    pub fn control(&self) -> &ControlRelation {
        &self.control
    }

    /// The extended clock store (per-shard slabs under the base deposet's
    /// plan).
    pub fn ext_clocks(&self) -> &ShardedClocks {
        &self.ext_clocks
    }

    /// Extended clock of a state (a borrowed row of its shard's extended
    /// arena).
    pub fn clock(&self, s: StateId) -> ClockRef<'_> {
        self.ext_clocks.row(s.process, self.base.row_of(s))
    }

    /// `s C→∪→ t` under extended causality.
    pub fn precedes(&self, s: StateId, t: StateId) -> bool {
        s != t
            && self
                .ext_clocks
                .word(s.process, self.base.row_of(s), s.process)
                <= self
                    .ext_clocks
                    .word(t.process, self.base.row_of(t), s.process)
    }

    /// Concurrency under extended causality.
    pub fn concurrent(&self, s: StateId, t: StateId) -> bool {
        s != t && !self.precedes(s, t) && !self.precedes(t, s)
    }

    /// Consistency of a global state under extended causality.
    pub fn is_consistent(&self, g: &GlobalState) -> bool {
        let n = self.base.process_count();
        for j in 0..n {
            let vj = self.clock(g.state_of(ProcessId(j as u32)));
            for i in 0..n {
                if i != j && vj.get(ProcessId(i as u32)) > g.index_of(ProcessId(i as u32)) {
                    return false;
                }
            }
        }
        true
    }

    /// Single-process consistent successors under extended causality.
    pub fn consistent_successors<'b>(
        &'b self,
        g: &'b GlobalState,
    ) -> impl Iterator<Item = GlobalState> + 'b {
        let dep = self.base;
        dep.processes().filter_map(move |p| {
            let next_idx = g.index_of(p) + 1;
            if (next_idx as usize) >= dep.len_of(p) {
                return None;
            }
            let v = self.clock(StateId::new(p, next_idx));
            let ok = dep.processes().all(|q| q == p || v.get(q) <= g.index_of(q));
            ok.then(|| g.advanced(p))
        })
    }

    /// Enumerate every consistent global state of the *controlled*
    /// computation (BFS, bounded by `limit`).
    pub fn consistent_global_states(
        &self,
        limit: usize,
    ) -> Result<Vec<GlobalState>, pctl_deposet::lattice::LatticeBudgetExceeded> {
        let init = GlobalState::initial(self.base.process_count());
        let mut seen: HashSet<GlobalState> = HashSet::new();
        let mut queue: VecDeque<GlobalState> = VecDeque::new();
        let mut out = Vec::new();
        seen.insert(init.clone());
        queue.push_back(init);
        while let Some(g) = queue.pop_front() {
            out.push(g.clone());
            if out.len() > limit {
                return Err(pctl_deposet::lattice::LatticeBudgetExceeded { limit });
            }
            for h in self.consistent_successors(&g) {
                if seen.insert(h.clone()) {
                    queue.push_back(h);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_deposet::DeposetBuilder;

    /// Two independent processes, two states each.
    fn grid2() -> Deposet {
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[]);
        b.internal(1, &[]);
        b.finish().unwrap()
    }

    #[test]
    fn empty_control_changes_nothing() {
        let d = grid2();
        let c = ControlledDeposet::new(&d, ControlRelation::empty()).unwrap();
        let all = c.consistent_global_states(100).unwrap();
        assert_eq!(all.len(), 4);
        for s in d.state_ids() {
            assert_eq!(c.clock(s), d.clock(s), "clocks unchanged without control");
        }
    }

    #[test]
    fn control_edge_removes_cuts() {
        let d = grid2();
        // Force P1's step before P0's step: (1,0) C→ (0,1). The control
        // message is sent by the event *leaving* (1,0), so P0 may not reach
        // (0,1) while P1 still sits at (1,0): cut ⟨1,0⟩ dies.
        let mut rel = ControlRelation::empty();
        rel.push(StateId::new(1usize, 0), StateId::new(0usize, 1));
        let c = ControlledDeposet::new(&d, rel).unwrap();
        let all = c.consistent_global_states(100).unwrap();
        assert_eq!(all.len(), 3);
        assert!(!c.is_consistent(&GlobalState::from_indices(vec![1, 0])));

        // Force P1 past its step before P0 steps: (1,1) C→ (0,1).
        let mut rel2 = ControlRelation::empty();
        rel2.push(StateId::new(1usize, 1), StateId::new(0usize, 1));
        let c2 = ControlledDeposet::new(&d, rel2).unwrap();
        let all2 = c2.consistent_global_states(100).unwrap();
        // ⟨1,0⟩ (P0 stepped, P1 not) is now inconsistent, and so is ⟨1,1⟩:
        // it contains both endpoints of the forced-before pair.
        assert_eq!(all2.len(), 2);
        assert!(!c2.is_consistent(&GlobalState::from_indices(vec![1, 0])));
        assert!(!c2.is_consistent(&GlobalState::from_indices(vec![1, 1])));
        assert!(c2.is_consistent(&GlobalState::from_indices(vec![0, 0])));
        assert!(c2.precedes(StateId::new(1usize, 1), StateId::new(0usize, 1)));
        assert!(c2.concurrent(StateId::new(1usize, 0), StateId::new(0usize, 0)));
    }

    #[test]
    fn interfering_relation_is_rejected_with_cycle() {
        let d = grid2();
        let mut rel = ControlRelation::empty();
        rel.push(StateId::new(1usize, 1), StateId::new(0usize, 1));
        rel.push(StateId::new(0usize, 1), StateId::new(1usize, 1));
        let err = ControlledDeposet::new(&d, rel).unwrap_err();
        match err {
            ControlError::Interference { cycle } => {
                assert!(!cycle.is_empty());
            }
            other => panic!("expected interference, got {other:?}"),
        }
    }

    #[test]
    fn control_interfering_with_messages_is_rejected() {
        // P0 sends to P1; forcing the receive's successor before the send's
        // origin closes a cycle through the message.
        let mut b = DeposetBuilder::new(2);
        let t = b.send(0, "m");
        b.recv(1, t, &[]);
        let d = b.finish().unwrap();
        let mut rel = ControlRelation::empty();
        rel.push(StateId::new(1usize, 1), StateId::new(0usize, 0));
        let err = ControlledDeposet::new(&d, rel).unwrap_err();
        assert!(matches!(err, ControlError::Interference { .. }));
    }

    #[test]
    fn unknown_state_is_rejected() {
        let d = grid2();
        let mut rel = ControlRelation::empty();
        rel.push(StateId::new(5usize, 0), StateId::new(0usize, 1));
        assert_eq!(
            ControlledDeposet::new(&d, rel).unwrap_err(),
            ControlError::UnknownState(StateId::new(5usize, 0))
        );
    }

    #[test]
    fn controlled_sequences_subset_of_base() {
        // Every controlled-consistent cut is base-consistent.
        let mut b = DeposetBuilder::new(3);
        let t = b.send(0, "m");
        b.internal(1, &[]);
        b.recv(2, t, &[]);
        b.internal(0, &[]);
        let d = b.finish().unwrap();
        let mut rel = ControlRelation::empty();
        rel.push(StateId::new(1usize, 1), StateId::new(0usize, 2));
        let c = ControlledDeposet::new(&d, rel).unwrap();
        let controlled = c.consistent_global_states(1000).unwrap();
        for g in &controlled {
            assert!(
                g.is_consistent(&d),
                "controlled cut {g:?} must be base-consistent"
            );
        }
        let base_count = pctl_deposet::lattice::count_consistent_global_states(&d, 1000).unwrap();
        assert!(
            controlled.len() < base_count,
            "control strictly restricts this lattice"
        );
    }

    #[test]
    fn relation_utilities() {
        let a = StateId::new(0usize, 0);
        let b = StateId::new(1usize, 1);
        let mut r = ControlRelation::empty();
        assert!(r.is_empty());
        r.push(a, b);
        r.push(a, b); // dup ignored
        assert_eq!(r.len(), 1);
        let merged = r.merged(&ControlRelation::from_pairs([(b, a), (a, b)]));
        assert_eq!(merged.len(), 2);
        assert_eq!(format!("{r}"), "{P0[0] C→ P1[1]}");
    }
}
