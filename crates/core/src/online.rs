//! The on-line control strategy for disjunctive predicates (paper
//! Figure 3).
//!
//! On-line predicate control is impossible in general for `n ≥ 2`
//! (Theorem 3 — demonstrated executably in the tests and the
//! `impossibility` integration scenario). Under the paper's assumptions
//!
//! * **A1** — no process blocks in states where its local predicate `lᵢ`
//!   is false, and
//! * **A2** — `lᵢ(⊤ᵢ)` holds (every process ends true),
//!
//! the *scapegoat* protocol solves it: at any time some process is the
//! scapegoat and must remain `lᵢ`-true until another process takes over.
//! Before making `lᵢ` false, the scapegoat sends `req` to some other
//! controller and blocks until an `ack`; a controller receiving `req`
//! answers immediately if currently true (becoming the new scapegoat) or
//! defers the answer until it next turns true. The scapegoat is an
//! *anti-token*: a liability rather than a privilege, which is why the
//! protocol costs only 2 control messages per `n` predicate falsifications
//! (Section 6, Evaluation).
//!
//! [`ScapegoatController`] is a sans-I/O state machine — unit-testable
//! without a network and reusable outside the simulator.
//! [`PhasedProcess`] couples it with a scripted application (alternating
//! true/false phases of the traced variable `ok`) on the discrete-event
//! simulator, measuring entries and response times.
//!
//! This baseline protocol assumes the paper's reliable channels and
//! immortal processes. The [`ft`] submodule hardens it against message
//! loss, duplication, reordering, and crash/restart faults injected by
//! `pctl_sim::FaultPlan`.

pub mod ft;

use pctl_deposet::ProcessId;
use pctl_sim::{Ctx, Payload, Process, SimTime, TimerId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Control-plane messages of the scapegoat protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CtrlMsg {
    /// "Take the scapegoat role from me."
    Req {
        /// The requesting controller.
        from: ProcessId,
    },
    /// "Role accepted; you may turn false."
    Ack,
    /// "I cannot take the role right now; ask someone else." Used only by
    /// the m-anti-token generalization (`pctl-mutex::multi`); the paper's
    /// single-token protocol never sends it.
    Busy,
}

impl Payload for CtrlMsg {
    fn tag(&self) -> &'static str {
        match self {
            CtrlMsg::Req { .. } => "req",
            CtrlMsg::Ack => "ack",
            CtrlMsg::Busy => "busy",
        }
    }
    fn is_control(&self) -> bool {
        true
    }
}

/// Effects requested by the controller state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlAction {
    /// Send a control message.
    Send {
        /// Destination controller.
        to: ProcessId,
        /// The message.
        msg: CtrlMsg,
    },
    /// The blocked falsification may proceed.
    Grant,
}

/// Outcome of [`ScapegoatController::request_false`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FalsifyDecision {
    /// Not the scapegoat: go false immediately.
    Granted,
    /// Scapegoat: blocked until an `ack`; send these first.
    Blocked(Vec<CtrlAction>),
}

/// The per-process controller `Cᵢ` of Figure 3, as a pure state machine.
#[derive(Clone, Debug)]
pub struct ScapegoatController {
    me: ProcessId,
    scapegoat: bool,
    waiting_ack: bool,
    local_true: bool,
    pending: VecDeque<ProcessId>,
}

impl ScapegoatController {
    /// A controller; exactly one process in the system must start with
    /// `init_scapegoat = true` (the paper's `init(i)`).
    pub fn new(me: ProcessId, init_scapegoat: bool) -> Self {
        ScapegoatController {
            me,
            scapegoat: init_scapegoat,
            waiting_ack: false,
            local_true: true,
            pending: VecDeque::new(),
        }
    }

    /// Whether this controller currently holds the anti-token.
    pub fn is_scapegoat(&self) -> bool {
        self.scapegoat
    }

    /// Whether the underlying process is blocked awaiting an `ack`.
    pub fn is_blocked(&self) -> bool {
        self.waiting_ack
    }

    /// The underlying process asks to make `lᵢ` false. `peers` is where to
    /// send `req` (one controller for the paper's protocol; all others for
    /// the broadcast variant).
    ///
    /// # Panics
    /// Panics on protocol misuse: requesting while already blocked or while
    /// already false.
    pub fn request_false(&mut self, peers: &[ProcessId]) -> FalsifyDecision {
        assert!(!self.waiting_ack, "already blocked on an ack");
        assert!(self.local_true, "already false");
        if !self.scapegoat {
            self.local_true = false;
            return FalsifyDecision::Granted;
        }
        assert!(!peers.is_empty(), "scapegoat needs at least one peer");
        self.waiting_ack = true;
        FalsifyDecision::Blocked(
            peers
                .iter()
                .map(|&p| {
                    assert_ne!(p, self.me, "cannot hand the scapegoat role to oneself");
                    CtrlAction::Send {
                        to: p,
                        msg: CtrlMsg::Req { from: self.me },
                    }
                })
                .collect(),
        )
    }

    /// A control message arrived.
    pub fn on_message(&mut self, msg: CtrlMsg) -> Vec<CtrlAction> {
        match msg {
            CtrlMsg::Req { from } => {
                // Figure 3's requester performs a *blocking* `receive(ack)`,
                // so a controller that is itself waiting for an ack must
                // defer incoming requests even though it is still true —
                // answering here would let two waiting scapegoats hand
                // their roles to each other and both turn false (a safety
                // violation on a consistent cut). Deferral keeps the
                // invariant #scapegoats = 1 + #acks-in-flight, which is
                // also what rules out circular waits (Theorem 4).
                if self.local_true && !self.waiting_ack {
                    self.scapegoat = true;
                    vec![CtrlAction::Send {
                        to: from,
                        msg: CtrlMsg::Ack,
                    }]
                } else {
                    self.pending.push_back(from);
                    vec![]
                }
            }
            CtrlMsg::Ack => {
                if self.waiting_ack {
                    // First ack wins (broadcast variant may deliver more).
                    self.waiting_ack = false;
                    self.scapegoat = false;
                    self.local_true = false;
                    vec![CtrlAction::Grant]
                } else {
                    vec![]
                }
            }
            // The single-token protocol never emits Busy; tolerate it for
            // forward compatibility with the m-token generalization.
            CtrlMsg::Busy => vec![],
        }
    }

    /// The underlying process turned `lᵢ` true again: answer deferred
    /// requests (taking the scapegoat role).
    pub fn notify_true(&mut self) -> Vec<CtrlAction> {
        self.local_true = true;
        let mut actions = Vec::new();
        while let Some(j) = self.pending.pop_front() {
            self.scapegoat = true;
            actions.push(CtrlAction::Send {
                to: j,
                msg: CtrlMsg::Ack,
            });
        }
        actions
    }
}

/// How a blocked scapegoat picks the peer(s) for its `req`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerSelect {
    /// Always the next process in ring order (deterministic).
    NextInRing,
    /// Seeded-uniform among the other processes.
    Random,
    /// The broadcast variant from Section 6's evaluation: ask everyone,
    /// first true controller answers — lower response time, `n − 1`
    /// messages per handover.
    Broadcast,
}

/// One application phase: stay true for `true_len` ticks, then false for
/// `false_len` ticks (`None` = stay false forever — used to violate A1 in
/// the impossibility scenario).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Duration of the predicate-true span before requesting falsification.
    pub true_len: u64,
    /// Duration of the false span; `None` never recovers (violates A1).
    pub false_len: Option<u64>,
}

/// Scripted application + controller, traced through the simulator.
///
/// The traced boolean variable `ok` is the local predicate `lᵢ`; false
/// phases model critical sections / unavailability windows.
pub struct PhasedProcess {
    ctrl: ScapegoatController,
    script: VecDeque<Phase>,
    select: PeerSelect,
    n: usize,
    requested_at: Option<SimTime>,
    current_false_len: Option<u64>,
}

impl PhasedProcess {
    /// Build a process for a system of `n` processes.
    pub fn new(
        me: ProcessId,
        n: usize,
        init_scapegoat: bool,
        select: PeerSelect,
        script: Vec<Phase>,
    ) -> Self {
        PhasedProcess {
            ctrl: ScapegoatController::new(me, init_scapegoat),
            script: script.into(),
            select,
            n,
            requested_at: None,
            current_false_len: None,
        }
    }

    fn peers(&self, ctx: &mut Ctx<'_, CtrlMsg>) -> Vec<ProcessId> {
        let me = ctx.me().index();
        let others: Vec<ProcessId> = (0..self.n)
            .filter(|&i| i != me)
            .map(|i| ProcessId(i as u32))
            .collect();
        match self.select {
            PeerSelect::Broadcast => others,
            PeerSelect::NextInRing => vec![ProcessId(((me + 1) % self.n) as u32)],
            PeerSelect::Random => {
                let k = ctx.rand_below(others.len() as u64) as usize;
                vec![others[k]]
            }
        }
    }

    fn apply(&mut self, actions: Vec<CtrlAction>, ctx: &mut Ctx<'_, CtrlMsg>) {
        for a in actions {
            match a {
                CtrlAction::Send { to, msg } => ctx.send(to, msg),
                CtrlAction::Grant => {
                    ctx.trace_end("blocked");
                    self.enter_false(ctx);
                }
            }
        }
    }

    fn enter_false(&mut self, ctx: &mut Ctx<'_, CtrlMsg>) {
        if let Some(at) = self.requested_at.take() {
            ctx.record("response", ctx.now().since(at));
        }
        ctx.count("entries", 1);
        ctx.step(&[("ok", 0)]);
        match self.current_false_len {
            Some(len) => {
                ctx.set_timer(len);
            }
            None => {
                // A1 violated: never recover; never finish.
            }
        }
    }

    fn begin_next_phase(&mut self, ctx: &mut Ctx<'_, CtrlMsg>) {
        match self.script.pop_front() {
            Some(ph) => {
                self.current_false_len = ph.false_len;
                ctx.set_timer(ph.true_len);
            }
            None => ctx.set_done(),
        }
    }
}

impl Process<CtrlMsg> for PhasedProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CtrlMsg>) {
        ctx.init_var("ok", 1);
        self.begin_next_phase(ctx);
    }

    fn on_message(&mut self, _from: ProcessId, msg: CtrlMsg, ctx: &mut Ctx<'_, CtrlMsg>) {
        let had_role = self.ctrl.is_scapegoat();
        let actions = self.ctrl.on_message(msg);
        if ctx.recording() && self.ctrl.is_scapegoat() != had_role {
            ctx.trace_instant(if self.ctrl.is_scapegoat() {
                "scapegoat_acquired"
            } else {
                "scapegoat_released"
            });
        }
        self.apply(actions, ctx);
    }

    fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, CtrlMsg>) {
        if ctx.var("ok") == Some(1) {
            if self.ctrl.is_blocked() {
                // Spurious timer while blocked cannot happen: timers are
                // only set when entering a phase.
                unreachable!("timer while blocked");
            }
            // End of a true phase: ask to go false.
            self.requested_at = Some(ctx.now());
            let peers = self.peers(ctx);
            match self.ctrl.request_false(&peers) {
                FalsifyDecision::Granted => self.enter_false(ctx),
                FalsifyDecision::Blocked(actions) => {
                    ctx.trace_begin("blocked");
                    self.apply(actions, ctx);
                }
            }
        } else {
            // End of a false phase: recover.
            ctx.step(&[("ok", 1)]);
            let had_role = self.ctrl.is_scapegoat();
            let actions = self.ctrl.notify_true();
            if ctx.recording() && !had_role && self.ctrl.is_scapegoat() {
                ctx.trace_instant("scapegoat_acquired");
            }
            self.apply(actions, ctx);
            self.begin_next_phase(ctx);
        }
    }
}

/// Build a ready-to-run process vector for an `n`-process phased workload;
/// process 0 starts as scapegoat.
pub fn phased_system(
    n: usize,
    scripts: Vec<Vec<Phase>>,
    select: PeerSelect,
) -> Vec<Box<dyn Process<CtrlMsg>>> {
    assert_eq!(scripts.len(), n);
    scripts
        .into_iter()
        .enumerate()
        .map(|(i, script)| {
            Box::new(PhasedProcess::new(
                ProcessId(i as u32),
                n,
                i == 0,
                select,
                script,
            )) as Box<dyn Process<CtrlMsg>>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_deposet::lattice::consistent_global_states;
    use pctl_deposet::DisjunctivePredicate;
    use pctl_sim::{DelayModel, SimConfig, Simulation};

    fn uniform_scripts(n: usize, phases: usize, true_len: u64, false_len: u64) -> Vec<Vec<Phase>> {
        (0..n)
            .map(|i| {
                (0..phases)
                    .map(|k| Phase {
                        // Staggered so processes collide in interesting ways.
                        true_len: true_len + (i as u64) * 3 + (k as u64 % 2),
                        false_len: Some(false_len),
                    })
                    .collect()
            })
            .collect()
    }

    fn run(n: usize, phases: usize, select: PeerSelect, seed: u64) -> pctl_sim::SimResult {
        let procs = phased_system(n, uniform_scripts(n, phases, 20, 10), select);
        let config = SimConfig {
            seed,
            delay: DelayModel::Fixed(5),
            ..SimConfig::default()
        };
        Simulation::new(config, procs).run()
    }

    #[test]
    fn controller_state_machine_handover() {
        let mut c0 = ScapegoatController::new(ProcessId(0), true);
        let mut c1 = ScapegoatController::new(ProcessId(1), false);
        // Non-scapegoat may falsify freely.
        assert_eq!(c1.request_false(&[ProcessId(0)]), FalsifyDecision::Granted);
        assert!(!c1.is_scapegoat());
        c1.notify_true();
        // Scapegoat must ask.
        let FalsifyDecision::Blocked(actions) = c0.request_false(&[ProcessId(1)]) else {
            panic!("scapegoat must block");
        };
        assert_eq!(
            actions,
            vec![CtrlAction::Send {
                to: ProcessId(1),
                msg: CtrlMsg::Req { from: ProcessId(0) }
            }]
        );
        assert!(c0.is_blocked());
        // P1 is true: accepts role, acks.
        let a1 = c1.on_message(CtrlMsg::Req { from: ProcessId(0) });
        assert!(c1.is_scapegoat());
        assert_eq!(
            a1,
            vec![CtrlAction::Send {
                to: ProcessId(0),
                msg: CtrlMsg::Ack
            }]
        );
        // Ack unblocks P0 and strips its role.
        let a0 = c0.on_message(CtrlMsg::Ack);
        assert_eq!(a0, vec![CtrlAction::Grant]);
        assert!(!c0.is_scapegoat());
        assert!(!c0.is_blocked());
    }

    #[test]
    fn controller_defers_req_while_false() {
        let mut c1 = ScapegoatController::new(ProcessId(1), false);
        assert_eq!(c1.request_false(&[ProcessId(0)]), FalsifyDecision::Granted);
        // Req arrives while false: deferred.
        assert!(c1
            .on_message(CtrlMsg::Req { from: ProcessId(0) })
            .is_empty());
        assert!(!c1.is_scapegoat());
        // Recovery answers it.
        let a = c1.notify_true();
        assert_eq!(
            a,
            vec![CtrlAction::Send {
                to: ProcessId(0),
                msg: CtrlMsg::Ack
            }]
        );
        assert!(c1.is_scapegoat());
    }

    #[test]
    fn waiting_scapegoat_defers_requests() {
        // Two scapegoats requesting each other must NOT trade acks — that
        // would let both go false simultaneously.
        let mut c0 = ScapegoatController::new(ProcessId(0), true);
        let _ = c0.request_false(&[ProcessId(1)]);
        assert!(c0.is_blocked());
        // Req arrives while c0 is blocked (and still true): deferred.
        assert!(c0
            .on_message(CtrlMsg::Req { from: ProcessId(1) })
            .is_empty());
        // Once c0's own handover completes and it recovers, the pending
        // request is answered.
        assert_eq!(c0.on_message(CtrlMsg::Ack), vec![CtrlAction::Grant]);
        let a = c0.notify_true();
        assert_eq!(
            a,
            vec![CtrlAction::Send {
                to: ProcessId(1),
                msg: CtrlMsg::Ack
            }]
        );
        assert!(c0.is_scapegoat());
    }

    #[test]
    fn duplicate_acks_are_ignored() {
        let mut c0 = ScapegoatController::new(ProcessId(0), true);
        let _ = c0.request_false(&[ProcessId(1), ProcessId(2)]);
        assert_eq!(c0.on_message(CtrlMsg::Ack), vec![CtrlAction::Grant]);
        assert_eq!(c0.on_message(CtrlMsg::Ack), vec![]);
    }

    #[test]
    #[should_panic(expected = "already false")]
    fn double_falsify_is_a_protocol_error() {
        let mut c = ScapegoatController::new(ProcessId(0), false);
        let _ = c.request_false(&[ProcessId(1)]);
        let _ = c.request_false(&[ProcessId(1)]);
    }

    #[test]
    fn simulation_satisfies_predicate_on_every_consistent_cut() {
        for seed in 0..5 {
            let r = run(3, 3, PeerSelect::NextInRing, seed);
            assert!(!r.deadlocked(), "strategy must not deadlock under A1/A2");
            let pred = DisjunctivePredicate::at_least_one(3, "ok");
            // The control messages are part of the trace, so EVERY
            // consistent cut of the controlled computation must satisfy B.
            let cuts = consistent_global_states(&r.deposet, 2_000_000).unwrap();
            for g in cuts {
                assert!(
                    pred.eval(&r.deposet, &g),
                    "seed {seed}: consistent cut {g:?} violates B"
                );
            }
        }
    }

    #[test]
    fn broadcast_variant_also_safe() {
        let r = run(4, 2, PeerSelect::Broadcast, 3);
        assert!(!r.deadlocked());
        let pred = DisjunctivePredicate::at_least_one(4, "ok");
        for g in consistent_global_states(&r.deposet, 2_000_000).unwrap() {
            assert!(pred.eval(&r.deposet, &g));
        }
    }

    #[test]
    fn random_peer_selection_safe() {
        let r = run(3, 3, PeerSelect::Random, 9);
        assert!(!r.deadlocked());
        let pred = DisjunctivePredicate::at_least_one(3, "ok");
        for g in consistent_global_states(&r.deposet, 2_000_000).unwrap() {
            assert!(pred.eval(&r.deposet, &g));
        }
    }

    #[test]
    fn message_cost_is_two_per_handover() {
        // n processes each falsifying once: only scapegoat handovers cost
        // messages — 2 per handover, and ≤ entries handovers.
        let r = run(4, 4, PeerSelect::NextInRing, 1);
        let entries = r.metrics.counter("entries");
        let ctrl = r.metrics.counter("msgs_ctrl");
        assert!(entries > 0);
        // Only the scapegoat's own falsifications cost anything: one req +
        // one ack per handover, and at most one handover per entry.
        assert!(ctrl <= 2 * entries);
        assert_eq!(ctrl % 2, 0, "every req is eventually acked");
    }

    #[test]
    fn no_consistent_cut_violation_at_scale() {
        // Polynomial consistent-cut check (GW detection of the all-false
        // conjunction) on systems too large for lattice enumeration.
        use pctl_deposet::LocalPredicate;
        for n in [4usize, 6, 8] {
            for select in [
                PeerSelect::NextInRing,
                PeerSelect::Random,
                PeerSelect::Broadcast,
            ] {
                for seed in 0..4 {
                    let procs = phased_system(n, uniform_scripts(n, 5, 15, 8), select);
                    let config = SimConfig {
                        seed,
                        delay: DelayModel::Fixed(5),
                        ..SimConfig::default()
                    };
                    let r = Simulation::new(config, procs).run();
                    assert!(!r.deadlocked(), "n={n} {select:?} seed={seed}");
                    let all_false: Vec<LocalPredicate> =
                        (0..n).map(|_| LocalPredicate::not_var("ok")).collect();
                    assert_eq!(
                        pctl_detect::possibly_conjunction(&r.deposet, &all_false),
                        None,
                        "n={n} {select:?} seed={seed}: all-false consistent cut"
                    );
                }
            }
        }
    }

    #[test]
    fn a2_violation_can_strand_the_final_scapegoat() {
        // A2 requires lᵢ(⊤ᵢ). If every peer *ends* false (scripts finish
        // inside a false phase... our driver always recovers, so model it
        // with peers that stop participating while the scapegoat still
        // wants a handover close to the end: the run must never violate
        // safety even if it cannot finish cleanly).
        let scripts = vec![
            // P0 wants one very late falsification.
            vec![Phase {
                true_len: 200,
                false_len: Some(5),
            }],
            // P1 does all its work early then is done (true forever — A2
            // holds, so this run completes; the assertion is liveness).
            vec![Phase {
                true_len: 10,
                false_len: Some(5),
            }],
        ];
        let procs = phased_system(2, scripts, PeerSelect::NextInRing);
        let config = SimConfig {
            seed: 0,
            delay: DelayModel::Fixed(5),
            ..SimConfig::default()
        };
        let r = Simulation::new(config, procs).run();
        assert!(!r.deadlocked(), "A2 holds ⇒ the late handover is answered");
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        for g in consistent_global_states(&r.deposet, 200_000).unwrap() {
            assert!(pred.eval(&r.deposet, &g));
        }
    }

    #[test]
    fn impossibility_scenario_deadlocks_without_a1() {
        // P1 goes false forever (violating A1); scapegoat P0 then requests
        // P1 and blocks for good: the run is a deadlock.
        let scripts = vec![
            vec![Phase {
                true_len: 50,
                false_len: Some(10),
            }],
            vec![Phase {
                true_len: 10,
                false_len: None,
            }],
        ];
        let procs = phased_system(2, scripts, PeerSelect::NextInRing);
        let config = SimConfig {
            seed: 0,
            delay: DelayModel::Fixed(5),
            ..SimConfig::default()
        };
        let r = Simulation::new(config, procs).run();
        assert!(r.deadlocked(), "violating A1 must deadlock the strategy");
        assert!(
            r.protocol_deadlock(),
            "the A1-violation deadlock is a genuine protocol deadlock \
             (engaged processes starved), not an inert script: {:?}",
            r.outcomes()
        );
        // Safety is still never violated — the strategy blocks rather than
        // let B break.
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        for g in consistent_global_states(&r.deposet, 100_000).unwrap() {
            assert!(pred.eval(&r.deposet, &g));
        }
    }
}
