//! The off-line disjunctive predicate-control algorithm (paper Figure 2).
//!
//! Given a traced computation and a disjunctive predicate
//! `B = l₁ ∨ … ∨ lₙ`, the algorithm either
//!
//! * synthesizes a control relation `C→` such that **every** global sequence
//!   of the controlled computation satisfies `B`, or
//! * proves `B` infeasible by exhibiting an *overlapping set* of
//!   false-intervals (Lemma 2): one false interval per process such that no
//!   process can leave its interval before all others have entered theirs —
//!   so every global sequence passes a global state where every `lᵢ` is
//!   false.
//!
//! The synthesized relation is a *chain* of alternating true-intervals and
//! backward-pointing `C→` arrows from some `⊥ᵢ` to some `⊤ⱼ`: any global
//! state must intersect the chain, and it either intersects a true interval
//! (so `B` holds) or straddles a backward arrow (so it is inconsistent in
//! the controlled computation).
//!
//! Two engines implement the paper's two complexity variants:
//!
//! * [`Engine::Naive`] recomputes `ValidPairs()` from scratch every
//!   iteration — the paper's O(n³p) baseline;
//! * [`Engine::Optimized`] maintains the candidate-pair set incrementally
//!   (pairs are (re)checked only when a member process's position changes) —
//!   the paper's O(n²p) implementation.
//!
//! Both produce chains with at most one control message per crossed false
//! interval, i.e. `|C→| = O(np)` (Section 5, Evaluation).

use crate::control::ControlRelation;
use pctl_deposet::{
    CausalStore, Deposet, DisjunctivePredicate, FalseIntervals, Interval, ProcessId, StateId,
};
use pctl_obs::{Event, EventKind, NullRecorder, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::time::Instant;

/// How `select()` resolves ties among valid pairs (the paper leaves it as
/// "randomly selected"; correctness is policy-independent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectPolicy {
    /// Deterministic: first valid pair in scan/stack order.
    First,
    /// Seeded uniform choice among candidates.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// Which ValidPairs engine to run (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Incremental candidate maintenance, O(n²p).
    Optimized,
    /// Full rescan per iteration, O(n³p).
    Naive,
}

/// Algorithm options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OfflineOptions {
    /// Tie-break policy for `select()`.
    pub policy: SelectPolicy,
    /// ValidPairs engine.
    pub engine: Engine,
}

impl Default for OfflineOptions {
    fn default() -> Self {
        OfflineOptions {
            policy: SelectPolicy::First,
            engine: Engine::Optimized,
        }
    }
}

/// Proof of infeasibility: an overlapping set of false intervals, one per
/// process (paper Lemma 2). See [`crate::overlap::is_overlapping`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Infeasible {
    /// One false interval per process, pairwise overlapping.
    pub witness: Vec<Interval>,
}

impl fmt::Display for Infeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no controller exists; overlapping false-intervals:")?;
        for i in &self.witness {
            write!(f, " {}[{}..{}]", i.process, i.lo, i.hi)?;
        }
        Ok(())
    }
}

/// Operation counts for complexity experiments (E2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OfflineStats {
    /// Outer-loop iterations (= false intervals crossed).
    pub iterations: usize,
    /// `crossable()` evaluations — the dominant O(·) term.
    pub pair_checks: usize,
    /// Cursor movements during causal advancement.
    pub advances: usize,
}

/// Engine-side telemetry: spans and counters on a synthetic lane one past
/// the computation's processes, stamped with wall-clock microseconds since
/// the engine started (the offline algorithm runs outside simulated time).
struct EngineTrace<'r> {
    rec: &'r mut dyn Recorder,
    lane: u32,
    epoch: Instant,
}

impl<'r> EngineTrace<'r> {
    fn new(rec: &'r mut dyn Recorder, process_count: usize) -> Self {
        EngineTrace {
            rec,
            lane: process_count as u32,
            epoch: Instant::now(),
        }
    }

    fn ts(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn span(&mut self, name: &str, kind: EventKind) {
        if self.rec.enabled() {
            self.rec.record(Event {
                ts: self.ts(),
                lane: self.lane,
                name: name.to_owned(),
                kind,
                clock: None,
            });
        }
    }

    fn begin(&mut self, name: &str) {
        self.span(name, EventKind::SpanBegin);
    }

    fn end(&mut self, name: &str) {
        self.span(name, EventKind::SpanEnd);
    }

    fn instant(&mut self, name: &str) {
        self.span(name, EventKind::Instant);
    }

    fn counter(&mut self, name: &str, value: i64) {
        self.span(name, EventKind::Counter { value });
    }
}

/// Run the off-line algorithm on `dep` for disjunctive predicate `pred`.
pub fn control_disjunctive(
    dep: &Deposet,
    pred: &DisjunctivePredicate,
    opts: OfflineOptions,
) -> Result<ControlRelation, Infeasible> {
    control_disjunctive_traced(dep, pred, opts, &mut NullRecorder)
}

/// [`control_disjunctive`] with engine telemetry: per-phase spans
/// (`interval_scan`, `chain_construction`, `overlap_check`) and operation
/// counters land in `rec` on a synthetic lane after the process lanes.
pub fn control_disjunctive_traced(
    dep: &Deposet,
    pred: &DisjunctivePredicate,
    opts: OfflineOptions,
    rec: &mut dyn Recorder,
) -> Result<ControlRelation, Infeasible> {
    let mut tr = EngineTrace::new(rec, dep.process_count());
    tr.begin("interval_scan");
    let intervals = FalseIntervals::extract(dep, pred);
    tr.end("interval_scan");
    tr.counter("false_intervals", intervals.total() as i64);
    control_intervals_impl(dep, &intervals, opts, &mut tr).0
}

/// Run on pre-extracted false intervals, also returning operation counts.
///
/// Generic over any [`CausalStore`]: the algorithm only consumes causal
/// structure and the interval lists, so the same monomorphised code serves
/// batch deposets and the streaming daemon's growing per-session stores.
pub fn control_intervals<C: CausalStore + ?Sized>(
    dep: &C,
    intervals: &FalseIntervals,
    opts: OfflineOptions,
) -> (Result<ControlRelation, Infeasible>, OfflineStats) {
    control_intervals_traced(dep, intervals, opts, &mut NullRecorder)
}

/// [`control_intervals`] with engine telemetry (see
/// [`control_disjunctive_traced`]).
pub fn control_intervals_traced<C: CausalStore + ?Sized>(
    dep: &C,
    intervals: &FalseIntervals,
    opts: OfflineOptions,
    rec: &mut dyn Recorder,
) -> (Result<ControlRelation, Infeasible>, OfflineStats) {
    let mut tr = EngineTrace::new(rec, dep.process_count());
    control_intervals_impl(dep, intervals, opts, &mut tr)
}

fn control_intervals_impl<C: CausalStore + ?Sized>(
    dep: &C,
    intervals: &FalseIntervals,
    opts: OfflineOptions,
    tr: &mut EngineTrace<'_>,
) -> (Result<ControlRelation, Infeasible>, OfflineStats) {
    let _prof = pctl_prof::span("control_intervals");
    let mut run = Run::new(dep, intervals, opts);
    tr.begin("chain_construction");
    let outcome = run.execute(tr);
    tr.end("chain_construction");
    tr.counter("iterations", run.stats.iterations as i64);
    tr.counter("pair_checks", run.stats.pair_checks as i64);
    tr.counter("advances", run.stats.advances as i64);
    match &outcome {
        Ok(rel) => tr.counter("control_tuples", rel.len() as i64),
        Err(_) => tr.instant("infeasible"),
    }
    (outcome, run.stats)
}

/// Per-process cursor over the interesting states (`⊥ᵢ`, `Iᵢ.lo`, the first
/// true state after each `Iᵢ.hi`, `⊤ᵢ`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Cursor {
    /// Number of false intervals fully crossed.
    pos: usize,
    /// Whether the process currently sits at `I(pos).lo` (paper: `false(i)`).
    at_lo: bool,
}

struct Run<'a, C: CausalStore + ?Sized> {
    dep: &'a C,
    iv: &'a FalseIntervals,
    opts: OfflineOptions,
    cur: Vec<Cursor>,
    chain: Vec<(StateId, StateId)>,
    stats: OfflineStats,
    rng: StdRng,
    /// Optimized engine: candidate (maintainer, crossee) pairs, lazily
    /// revalidated on pop.
    candidates: Vec<(usize, usize)>,
}

impl<'a, C: CausalStore + ?Sized> Run<'a, C> {
    fn new(dep: &'a C, iv: &'a FalseIntervals, opts: OfflineOptions) -> Self {
        let n = dep.process_count();
        assert_eq!(iv.process_count(), n);
        let seed = match opts.policy {
            SelectPolicy::Random { seed } => seed,
            SelectPolicy::First => 0,
        };
        // A process whose first false interval starts at ⊥ is false from
        // the outset: its cursor begins at the interval's lo.
        let cur = (0..n)
            .map(|i| Cursor {
                pos: 0,
                at_lo: iv
                    .of(ProcessId(i as u32))
                    .first()
                    .is_some_and(|first| first.lo == 0),
            })
            .collect();
        Run {
            dep,
            iv,
            opts,
            cur,
            chain: Vec::new(),
            stats: OfflineStats::default(),
            rng: StdRng::seed_from_u64(seed),
            candidates: Vec::new(),
        }
    }

    /// The paper's `N(i)`: the next (or current) false interval of `i`.
    fn n_interval(&self, i: usize) -> Option<&Interval> {
        self.iv.of(ProcessId(i as u32)).get(self.cur[i].pos)
    }

    /// The paper's `false(i)`.
    fn is_false(&self, i: usize) -> bool {
        self.cur[i].at_lo
    }

    /// The paper's `g[i]`: for a "false" cursor it is `I.lo`; for a "true"
    /// cursor it is `⊥ᵢ` or the `hi` of the last crossed interval.
    ///
    /// Using exactly `I.hi` (not its successor) is what makes the output
    /// non-interfering: the advancement loop guarantees `next(j) !→ t` for
    /// every crossed endpoint `t` once `j`'s cursor stops, and `!→` is
    /// monotone along a process's order — so no later chain target can
    /// causally precede a tuple source. (A successor state `I.hi + 1`
    /// could receive a message *from beyond a future tuple target*, closing
    /// a cycle.) Soundness is unaffected: the arrow edge `g[k'] C→ next(k)`
    /// makes every cut with `k'` at `g[k']` and `k` at-or-past `next(k)`
    /// inconsistent, and cuts strictly past `g[k']` see `k'` inside its
    /// true interval.
    fn state_of(&self, i: usize) -> StateId {
        let c = self.cur[i];
        let p = ProcessId(i as u32);
        if c.at_lo {
            self.iv.of(p)[c.pos].lo_state()
        } else if c.pos == 0 {
            self.dep.bottom(p)
        } else {
            self.iv.of(p)[c.pos - 1].hi_state()
        }
    }

    /// The paper's `next(i)`.
    fn next_state(&self, i: usize) -> StateId {
        let p = ProcessId(i as u32);
        match self.n_interval(i) {
            None => self.dep.top(p),
            Some(iv) => {
                if self.cur[i].at_lo {
                    iv.hi_state()
                } else {
                    iv.lo_state()
                }
            }
        }
    }

    /// `crossable(Iᵢ, Iⱼ)`: `Iⱼ` can be fully crossed — *including its exit
    /// event* — while staying before `Iᵢ` (paper Section 5).
    ///
    /// We test `Iᵢ.lo !→ succ(Iⱼ.hi)` rather than the paper's literal
    /// `Iᵢ.lo !→ Iⱼ.hi`: a control tuple is enforced by a message sent in
    /// the event *leaving* its source state, so what must be independent of
    /// `Iᵢ.lo` is `Iⱼ`'s exit, not just its last state. (With the literal
    /// test, a message received by `Iⱼ`'s exit event from at-or-after
    /// `Iᵢ.lo` lets the algorithm emit a tuple no control system can
    /// enforce — the replay would deadlock.) Since `hi → succ(hi)`, this
    /// is a strictly stronger requirement, and the matching infeasibility
    /// condition (`∀ i ≠ j: Iᵢ.lo → succ(Iⱼ.hi) ∨ Iᵢ.lo = ⊥ ∨ Iⱼ.hi = ⊤`)
    /// still implies no satisfying sequence exists: in any execution,
    /// consider the first process to *exit* its interval — every other
    /// process must already have entered its own, so all are false
    /// simultaneously (the first-exit form of Lemma 2).
    fn crossable(&mut self, ii: &Interval, ij: &Interval) -> bool {
        self.stats.pair_checks += 1;
        // "Iⱼ can be crossed while Iᵢ stays un-entered" in the
        // *enforceable* (interleaving) semantics:
        //   pred(Iᵢ.lo) !→ succ(Iⱼ.hi)
        // — the event entering Iᵢ must not happen-before the event ending
        // Iⱼ. Both endpoint shifts are the event→state translation of the
        // paper's condition; see crate::overlap's module docs for the
        // derivation, the counterexample ruling out the literal reading,
        // and the discussion of why simultaneity (which would weaken this
        // to the OR of single shifts) is not realizable by message-based
        // control. The test itself is the computation store's shared
        // primitive, so control and detection can never drift apart.
        pctl_deposet::store::crossable(self.dep, ii, ij)
    }

    /// Membership test for `ValidPairs()`: maintain `i` true while crossing
    /// `N(j)`.
    fn valid_pair(&mut self, i: usize, j: usize) -> bool {
        if i == j || self.is_false(i) {
            return false;
        }
        let (Some(&ni), Some(&nj)) = (self.n_interval(i), self.n_interval(j)) else {
            return false;
        };
        self.crossable(&ni, &nj)
    }

    /// Naive select: rescan all pairs.
    fn select_naive(&mut self) -> Option<(usize, usize)> {
        let n = self.cur.len();
        let mut found = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if self.valid_pair(i, j) {
                    if matches!(self.opts.policy, SelectPolicy::First) {
                        return Some((i, j));
                    }
                    found.push((i, j));
                }
            }
        }
        if found.is_empty() {
            None
        } else {
            let idx = self.rng.gen_range(0..found.len());
            Some(found[idx])
        }
    }

    /// Optimized select: pop (lazily revalidated) candidates.
    fn select_optimized(&mut self) -> Option<(usize, usize)> {
        loop {
            if self.candidates.is_empty() {
                return None;
            }
            let idx = match self.opts.policy {
                SelectPolicy::First => self.candidates.len() - 1,
                SelectPolicy::Random { .. } => self.rng.gen_range(0..self.candidates.len()),
            };
            let (i, j) = self.candidates.swap_remove(idx);
            if self.valid_pair(i, j) {
                return Some((i, j));
            }
        }
    }

    /// Optimized engine: re-seed candidates involving process `i` after its
    /// cursor changed (O(n) pair checks per change — the key to O(n²p)).
    fn reseed(&mut self, i: usize) {
        let n = self.cur.len();
        for j in 0..n {
            if j == i {
                continue;
            }
            if self.valid_pair(i, j) {
                self.candidates.push((i, j));
            }
            if self.valid_pair(j, i) {
                self.candidates.push((j, i));
            }
        }
    }

    /// The paper's `AddControl(C, k', k)`.
    ///
    /// The restart branch (`C := ∅`) is taken only when the new anchor is
    /// `⊥` *and the local predicate is true there* — i.e. the cursor has
    /// crossed nothing and no false interval starts at `⊥`. (The paper's
    /// literal `g[k'] = ⊥` test would also clear the chain after crossing a
    /// false interval `[⊥, ⊥]`, whose `hi` coincides with `⊥`; that anchor
    /// is a false state and cannot start a chain.)
    fn add_control(&mut self, k_new: usize, k_prev: Option<usize>) {
        let p = ProcessId(k_new as u32);
        let c = self.cur[k_new];
        let bottom_is_true_anchor =
            c.pos == 0 && !c.at_lo && self.iv.of(p).first().is_none_or(|i| i.lo > 0);
        if bottom_is_true_anchor {
            // Chain can start afresh at ⊥ of the new maintainer.
            self.chain.clear();
        } else if let Some(k) = k_prev {
            if k != k_new {
                let g_new = self.state_of(k_new);
                let target = self.next_state(k);
                self.chain.push((g_new, target));
            }
        }
    }

    /// Advance every cursor to be causally consistent with crossing the
    /// interval ending at `t` (the paper's L6–L9,
    /// `while next(i) → t { g[i] := next(i) }`, against the crossing
    /// frontier `succ(t)` — the exit event — to match
    /// [`Self::crossable`]). Returns the processes whose cursor changed.
    ///
    /// Keeps the enforceability invariant: once a cursor stops,
    /// `pred(next(i).lo) !→ succ(x)` for the crossed endpoint `x`, and
    /// `!→` is monotone along a process's order, so no later tuple target
    /// `y` can have `pred(y) → succ(source)` — the condition under which a
    /// control message could not be realized.
    fn advance_to(&mut self, t: StateId) -> Vec<usize> {
        let n = self.cur.len();
        let frontier = t.successor();
        let mut changed = Vec::new();
        for i in 0..n {
            let before = self.cur[i];
            loop {
                let c = self.cur[i];
                if c.at_lo {
                    let iv = self.iv.of(ProcessId(i as u32))[c.pos];
                    let last = (self.dep.len_of(ProcessId(i as u32)) - 1) as u32;
                    // Forced past: the interval's own exit event
                    // happens-before the frontier (`pred(succ(hi)) = hi`).
                    if iv.hi < last && self.dep.precedes(iv.hi_state(), frontier) {
                        self.cur[i] = Cursor {
                            pos: c.pos + 1,
                            at_lo: false,
                        };
                        self.stats.advances += 1;
                    } else {
                        break;
                    }
                } else {
                    // Forced in: the interval's entry event happens-before
                    // the frontier (`lo > 0` here: intervals starting at ⊥
                    // are entered at cursor initialisation).
                    match self.n_interval(i) {
                        Some(iv)
                            if iv.lo > 0
                                && self.dep.precedes(
                                    iv.lo_state().predecessor().expect("lo > 0"),
                                    frontier,
                                ) =>
                        {
                            self.cur[i].at_lo = true;
                            self.stats.advances += 1;
                        }
                        _ => break,
                    }
                }
            }
            if self.cur[i] != before {
                changed.push(i);
            }
        }
        changed
    }

    fn execute(&mut self, tr: &mut EngineTrace<'_>) -> Result<ControlRelation, Infeasible> {
        let n = self.cur.len();
        // Seed the optimized candidate set once (O(n²)).
        if self.opts.engine == Engine::Optimized {
            for i in 0..n {
                for j in 0..n {
                    if self.valid_pair(i, j) {
                        self.candidates.push((i, j));
                    }
                }
            }
        }
        let mut k_prev: Option<usize> = None;
        // L1: exit as soon as some process has no false interval ahead of
        // its cursor (its chain can run to ⊤).
        while (0..n).all(|i| self.n_interval(i).is_some()) {
            let pair = match self.opts.engine {
                Engine::Naive => self.select_naive(),
                Engine::Optimized => self.select_optimized(),
            };
            let Some((k_new, l)) = pair else {
                // L2–L3: no valid pair ⇒ the residual next-intervals form an
                // overlapping set (Lemma 2 / [12]).
                tr.begin("overlap_check");
                let witness: Vec<Interval> = (0..n)
                    .map(|i| *self.n_interval(i).expect("loop guard"))
                    .collect();
                debug_assert!(
                    crate::overlap::is_overlapping(self.dep, &witness),
                    "infeasibility witness must overlap"
                );
                tr.end("overlap_check");
                return Err(Infeasible { witness });
            };
            self.stats.iterations += 1;
            // L5: link the chain before moving g.
            self.add_control(k_new, k_prev);
            // L6–L9: cross N(l) and advance everything causally dragged
            // along. l's own interval is crossed by the loop itself:
            // `hi → succ(hi)` strictly.
            let t = self
                .n_interval(l)
                .expect("valid pair ⇒ interval")
                .hi_state();
            let changed = self.advance_to(t);
            debug_assert!(
                changed.contains(&l),
                "the crossed interval is behind the frontier"
            );
            if self.opts.engine == Engine::Optimized {
                for &i in &changed {
                    self.reseed(i);
                }
            }
            // L10: remember this iteration's maintainer.
            k_prev = Some(k_new);
        }
        // L11–L12: some process is true to the end; close the chain there.
        let k_final = (0..n)
            .find(|&i| self.n_interval(i).is_none())
            .expect("loop exited ⇒ some process exhausted");
        self.add_control(k_final, k_prev);
        Ok(ControlRelation::from_pairs(self.chain.drain(..)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::ControlledDeposet;
    use pctl_deposet::{DeposetBuilder, GlobalState, LocalPredicate};

    fn opts_all() -> Vec<OfflineOptions> {
        vec![
            OfflineOptions {
                policy: SelectPolicy::First,
                engine: Engine::Optimized,
            },
            OfflineOptions {
                policy: SelectPolicy::First,
                engine: Engine::Naive,
            },
            OfflineOptions {
                policy: SelectPolicy::Random { seed: 7 },
                engine: Engine::Optimized,
            },
            OfflineOptions {
                policy: SelectPolicy::Random { seed: 7 },
                engine: Engine::Naive,
            },
        ]
    }

    /// Exhaustively check that `rel` makes every consistent global state of
    /// the controlled computation satisfy `pred`.
    fn assert_controls(dep: &Deposet, pred: &DisjunctivePredicate, rel: &ControlRelation) {
        let c = ControlledDeposet::new(dep, rel.clone()).expect("no interference");
        for g in c.consistent_global_states(100_000).unwrap() {
            assert!(
                pred.eval(dep, &g),
                "controlled cut {g:?} violates predicate (C = {rel})"
            );
        }
    }

    /// Two processes with one overlapping-in-time critical section each;
    /// control must serialize them.
    fn two_proc_mutex() -> (Deposet, DisjunctivePredicate) {
        let mut b = DeposetBuilder::new(2);
        for p in 0..2 {
            b.init_vars(p, &[("cs", 0)]);
            b.internal(p, &[("cs", 1)]);
            b.internal(p, &[("cs", 0)]);
        }
        (
            b.finish().unwrap(),
            DisjunctivePredicate::at_least_one_not(2, "cs"),
        )
    }

    #[test]
    fn serializes_two_process_mutex() {
        let (dep, pred) = two_proc_mutex();
        // Without control, the all-critical cut ⟨1,1⟩ is consistent.
        assert!(!pred.eval(&dep, &GlobalState::from_indices(vec![1, 1])));
        for opts in opts_all() {
            let rel = control_disjunctive(&dep, &pred, opts).expect("feasible");
            assert!(!rel.is_empty(), "some control is necessary here");
            assert_controls(&dep, &pred, &rel);
            // One message per critical section in the worst case (§5).
            assert!(rel.len() <= 2);
        }
    }

    #[test]
    fn no_control_needed_when_predicate_never_all_false() {
        // P0 is always available; B = avail0 ∨ avail1 holds vacuously.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("avail", 1)]);
        b.init_vars(1, &[("avail", 1)]);
        b.internal(1, &[("avail", 0)]);
        b.internal(1, &[("avail", 1)]);
        b.internal(0, &[]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "avail");
        for opts in opts_all() {
            let rel = control_disjunctive(&dep, &pred, opts).expect("feasible");
            assert!(
                rel.is_empty(),
                "P0 true throughout ⇒ empty chain, got {rel}"
            );
        }
    }

    #[test]
    fn detects_overlap_infeasibility() {
        // Both processes false from ⊥ to ⊤: plainly infeasible.
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[]);
        b.internal(1, &[]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "avail"); // never set ⇒ false
        for opts in opts_all() {
            let err = control_disjunctive(&dep, &pred, opts).unwrap_err();
            assert_eq!(err.witness.len(), 2);
            assert!(crate::overlap::is_overlapping(&dep, &err.witness));
        }
    }

    #[test]
    fn message_forced_overlap_is_infeasible() {
        // P0's unavailability causally covers P1's availability gap:
        // P0: avail, unavail(send), unavail, avail
        // P1: avail, (recv) unavail, avail   — the message forces P1's
        // unavailability strictly inside P0's ⇒ some cut has both false and
        // every sequence passes it.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("avail", 1)]);
        b.init_vars(1, &[("avail", 1)]);
        b.internal(0, &[("avail", 0)]);
        let t = b.send(0, "sync");
        let t2 = b.send(1, "back");
        b.recv(1, t, &[("avail", 0)]);
        b.internal(1, &[("avail", 1)]);
        // Ensure P0 stays unavailable until after P1 went false again:
        b.recv(0, t2, &[]);
        b.internal(0, &[("avail", 1)]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "avail");
        // Sanity: P1 goes false strictly inside P0's false interval?
        // P0 false on [1, ...] and P1 false at its recv state.
        for opts in opts_all() {
            let r = control_disjunctive(&dep, &pred, opts);
            match r {
                Err(inf) => {
                    assert!(crate::overlap::is_overlapping(&dep, &inf.witness));
                }
                Ok(rel) => {
                    // If the instance is actually feasible the control must
                    // be verifiable. (Exact feasibility depends on the
                    // constructed causality; both answers are validated.)
                    assert_controls(&dep, &pred, &rel);
                }
            }
        }
    }

    #[test]
    fn three_process_server_availability() {
        // Three servers with staggered unavailability windows; feasible.
        let mut b = DeposetBuilder::new(3);
        for p in 0..3 {
            b.init_vars(p, &[("avail", 1)]);
        }
        for p in 0..3 {
            b.internal(p, &[("avail", 0)]);
            b.internal(p, &[("avail", 1)]);
        }
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(3, "avail");
        for opts in opts_all() {
            let rel = control_disjunctive(&dep, &pred, opts).expect("feasible");
            assert_controls(&dep, &pred, &rel);
        }
    }

    #[test]
    fn chain_size_is_bounded_by_crossed_intervals() {
        use pctl_deposet::generator::{cs_workload, CsConfig};
        let cfg = CsConfig {
            processes: 4,
            sections_per_process: 6,
            ..CsConfig::default()
        };
        let dep = cs_workload(&cfg, 11);
        let pred = DisjunctivePredicate::at_least_one_not(4, "cs");
        let intervals = FalseIntervals::extract(&dep, &pred);
        let (res, stats) = control_intervals(&dep, &intervals, OfflineOptions::default());
        let rel = res.expect("cs workload is always feasible");
        assert!(rel.len() <= stats.iterations, "≤ one tuple per iteration");
        assert!(
            stats.iterations <= intervals.total(),
            "≤ one iteration per interval"
        );
        assert_controls(&dep, &pred, &rel);
    }

    #[test]
    fn engines_agree_on_feasibility() {
        use pctl_deposet::generator::{pipelined_workload, CsConfig};
        for seed in 0..20 {
            let cfg = CsConfig {
                processes: 3,
                sections_per_process: 3,
                ..CsConfig::default()
            };
            let dep = pipelined_workload(&cfg, seed);
            let pred = DisjunctivePredicate::at_least_one_not(3, "cs");
            let a = control_disjunctive(
                &dep,
                &pred,
                OfflineOptions {
                    policy: SelectPolicy::First,
                    engine: Engine::Optimized,
                },
            );
            let b = control_disjunctive(
                &dep,
                &pred,
                OfflineOptions {
                    policy: SelectPolicy::First,
                    engine: Engine::Naive,
                },
            );
            assert_eq!(a.is_ok(), b.is_ok(), "engines disagree on seed {seed}");
            if let (Ok(ra), Ok(rb)) = (a, b) {
                assert_controls(&dep, &pred, &ra);
                assert_controls(&dep, &pred, &rb);
            }
        }
    }

    #[test]
    fn single_process_cases() {
        // Single process, never false: trivially feasible with empty chain.
        let mut b = DeposetBuilder::new(1);
        b.init_vars(0, &[("ok", 1)]);
        b.internal(0, &[]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(1, "ok");
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap();
        assert!(rel.is_empty());

        // Single process with a false state: infeasible (it must pass it).
        let mut b2 = DeposetBuilder::new(1);
        b2.init_vars(0, &[("ok", 1)]);
        b2.internal(0, &[("ok", 0)]);
        b2.internal(0, &[("ok", 1)]);
        let dep2 = b2.finish().unwrap();
        let err = control_disjunctive(&dep2, &pred, OfflineOptions::default()).unwrap_err();
        assert_eq!(err.witness.len(), 1);
    }

    #[test]
    fn event_ordering_property_x_before_y() {
        // Paper example (3): "x must happen before y" as after_x ∨ before_y.
        // P0 reaches x (after_x true from then on); P1 must not pass y
        // until P0 did x.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("after_x", 0)]);
        b.init_vars(1, &[("before_y", 1)]);
        b.internal(0, &[("after_x", 1)]); // event x
        b.internal(1, &[("before_y", 0)]); // event y
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::new(vec![
            LocalPredicate::var("after_x"),
            LocalPredicate::var("before_y"),
        ]);
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).expect("feasible");
        assert_controls(&dep, &pred, &rel);
        // The control orders x before y: no controlled-consistent cut has
        // y done (P1 at state 1) while x is not (P0 still at state 0).
        let c = ControlledDeposet::new(&dep, rel).unwrap();
        assert!(!c.is_consistent(&pctl_deposet::GlobalState::from_indices(vec![0, 1])));
        assert!(c.is_consistent(&pctl_deposet::GlobalState::from_indices(vec![1, 1])));
        assert!(c.is_consistent(&pctl_deposet::GlobalState::from_indices(vec![1, 0])));
    }

    #[test]
    fn interval_starting_at_bottom_is_not_a_chain_anchor() {
        // Regression: crossing a false interval [⊥, ⊥] must NOT trigger
        // the chain-restart branch (⊥ is a false state there). The paper's
        // example (3) "x before y" exercises exactly this: P0's after_x is
        // false at ⊥ only.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("after_x", 0)]);
        b.init_vars(1, &[("before_y", 1)]);
        b.internal(0, &[("after_x", 1)]);
        b.internal(1, &[("before_y", 0)]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::new(vec![
            LocalPredicate::var("after_x"),
            LocalPredicate::var("before_y"),
        ]);
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap();
        assert!(
            !rel.is_empty(),
            "an empty chain would leave the bad cut reachable"
        );
        assert_controls(&dep, &pred, &rel);
    }

    #[test]
    fn interval_ending_at_top_cannot_be_crossed() {
        // P1 is false from some point to ⊤ (violating A2 off-line is fine);
        // the chain must route through P1's remaining-true prefix or be
        // infeasible — never "cross" the final interval.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 1)]);
        b.init_vars(1, &[("ok", 1)]);
        b.internal(0, &[("ok", 0)]);
        b.internal(0, &[("ok", 1)]);
        b.internal(1, &[("ok", 0)]); // false to the end
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        let rel = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap();
        assert_controls(&dep, &pred, &rel);
        // The tuple must block P1's final fall until P0 recovered:
        let c = ControlledDeposet::new(&dep, rel).unwrap();
        assert!(!c.is_consistent(&pctl_deposet::GlobalState::from_indices(vec![1, 1])));
    }

    #[test]
    fn message_into_exit_event_is_detected_infeasible() {
        // Regression for the enforceability/off-by-one analysis: the
        // documented counterexample where P0 only recovers by receiving a
        // message sent from deep inside P1's terminal false interval.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 1)]);
        b.init_vars(1, &[("ok", 1)]);
        b.internal(0, &[("ok", 0)]);
        let m0 = b.send(0, "m0");
        b.recv(1, m0, &[("ok", 0)]);
        b.internal(1, &[]);
        let m1 = b.send(1, "m1");
        b.recv(0, m1, &[("ok", 1)]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        let err = control_disjunctive(&dep, &pred, OfflineOptions::default()).unwrap_err();
        assert!(crate::overlap::is_overlapping(&dep, &err.witness));
    }

    #[test]
    fn stats_reflect_work_done() {
        let (dep, pred) = two_proc_mutex();
        let intervals = FalseIntervals::extract(&dep, &pred);
        let (_, stats) = control_intervals(&dep, &intervals, OfflineOptions::default());
        assert!(stats.iterations >= 1);
        assert!(stats.pair_checks >= 1);
    }
}
