//! CNF formulas and a DPLL SAT solver.
//!
//! Substrate for the paper's NP-hardness construction (Section 4): SAT is
//! reduced to *Satisfying Global Sequence Detection* (SGSD), so we need SAT
//! instances, a reference solver to cross-check the reduction, and a random
//! instance generator for the scaling experiment (E1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A literal: variable index (0-based) plus polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lit {
    /// Variable index.
    pub var: usize,
    /// `true` = positive occurrence.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `var`.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal of `var`.
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// Truth value under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "¬")?;
        }
        write!(f, "x{}", self.var)
    }
}

/// A CNF formula.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cnf {
    /// Number of variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// Clauses, each a disjunction of literals.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// A formula with no clauses (trivially satisfiable).
    pub fn trivial(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Evaluate under a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// Uniform random k-SAT instance.
    pub fn random_ksat(num_vars: usize, num_clauses: usize, k: usize, seed: u64) -> Cnf {
        assert!(k >= 1 && k <= num_vars);
        let mut rng = StdRng::seed_from_u64(seed);
        let clauses = (0..num_clauses)
            .map(|_| {
                // k distinct variables, random polarity.
                let mut vars: Vec<usize> = Vec::with_capacity(k);
                while vars.len() < k {
                    let v = rng.gen_range(0..num_vars);
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                vars.into_iter()
                    .map(|v| Lit {
                        var: v,
                        positive: rng.gen_bool(0.5),
                    })
                    .collect()
            })
            .collect();
        Cnf { num_vars, clauses }
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, l) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// DPLL with unit propagation and pure-literal elimination. Returns a
/// satisfying assignment or `None`.
pub fn dpll(cnf: &Cnf) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.num_vars];
    if solve(cnf, &mut assignment) {
        Some(assignment.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// Satisfiability check only.
pub fn satisfiable(cnf: &Cnf) -> bool {
    dpll(cnf).is_some()
}

fn solve(cnf: &Cnf, assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint; detect conflicts.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut propagated = false;
        for clause in &cnf.clauses {
            let mut unassigned: Option<Lit> = None;
            let mut satisfied = false;
            let mut unassigned_count = 0;
            for &l in clause {
                match assignment[l.var] {
                    Some(v) if v == l.positive => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        unassigned_count += 1;
                        unassigned = Some(l);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match unassigned_count {
                0 => {
                    // Conflict: undo trail.
                    for &v in &trail {
                        assignment[v] = None;
                    }
                    return false;
                }
                1 => {
                    let l = unassigned.unwrap();
                    assignment[l.var] = Some(l.positive);
                    trail.push(l.var);
                    propagated = true;
                }
                _ => {}
            }
        }
        if !propagated {
            break;
        }
    }
    // Pure literal elimination.
    let mut polarity: Vec<(bool, bool)> = vec![(false, false); cnf.num_vars];
    for clause in &cnf.clauses {
        // Only consider clauses not yet satisfied.
        if clause.iter().any(|l| assignment[l.var] == Some(l.positive)) {
            continue;
        }
        for &l in clause {
            if assignment[l.var].is_none() {
                if l.positive {
                    polarity[l.var].0 = true;
                } else {
                    polarity[l.var].1 = true;
                }
            }
        }
    }
    for v in 0..cnf.num_vars {
        if assignment[v].is_none() {
            match polarity[v] {
                (true, false) => {
                    assignment[v] = Some(true);
                    trail.push(v);
                }
                (false, true) => {
                    assignment[v] = Some(false);
                    trail.push(v);
                }
                _ => {}
            }
        }
    }
    // Branch on the first unassigned variable occurring in an unsatisfied
    // clause.
    let mut branch_var = None;
    'outer: for clause in &cnf.clauses {
        if clause.iter().any(|l| assignment[l.var] == Some(l.positive)) {
            continue;
        }
        for &l in clause {
            if assignment[l.var].is_none() {
                branch_var = Some(l.var);
                break 'outer;
            }
        }
    }
    let Some(v) = branch_var else {
        // All clauses satisfied.
        return true;
    };
    for value in [true, false] {
        assignment[v] = Some(value);
        if solve(cnf, assignment) {
            return true;
        }
        assignment[v] = None;
    }
    for u in trail {
        assignment[u] = None;
    }
    false
}

/// Exhaustive satisfiability (ground truth for small formulas).
pub fn satisfiable_brute(cnf: &Cnf) -> bool {
    assert!(cnf.num_vars <= 24, "brute force limited to 24 variables");
    (0u64..(1u64 << cnf.num_vars)).any(|bits| {
        let assignment: Vec<bool> = (0..cnf.num_vars).map(|v| bits >> v & 1 == 1).collect();
        cnf.eval(&assignment)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnf(num_vars: usize, clauses: &[&[(usize, bool)]]) -> Cnf {
        Cnf {
            num_vars,
            clauses: clauses
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|&(v, pos)| Lit {
                            var: v,
                            positive: pos,
                        })
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn trivial_formula_is_sat() {
        assert!(satisfiable(&Cnf::trivial(3)));
        let a = dpll(&Cnf::trivial(2)).unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let f = Cnf {
            num_vars: 1,
            clauses: vec![vec![]],
        };
        assert!(!satisfiable(&f));
    }

    #[test]
    fn simple_sat_and_unsat() {
        // (x0) ∧ (¬x0) — unsat.
        let f = cnf(1, &[&[(0, true)], &[(0, false)]]);
        assert!(!satisfiable(&f));
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1) — sat with x1 = true.
        let g = cnf(2, &[&[(0, true), (1, true)], &[(0, false), (1, true)]]);
        let a = dpll(&g).unwrap();
        assert!(g.eval(&a));
    }

    #[test]
    fn unit_propagation_chain() {
        // x0; ¬x0∨x1; ¬x1∨x2; ¬x2 — unsat via pure propagation.
        let f = cnf(
            3,
            &[
                &[(0, true)],
                &[(0, false), (1, true)],
                &[(1, false), (2, true)],
                &[(2, false)],
            ],
        );
        assert!(!satisfiable(&f));
    }

    #[test]
    fn dpll_assignment_actually_satisfies() {
        for seed in 0..30 {
            let f = Cnf::random_ksat(8, 20, 3, seed);
            if let Some(a) = dpll(&f) {
                assert!(f.eval(&a), "dpll returned a non-model for seed {seed}");
            }
        }
    }

    #[test]
    fn dpll_agrees_with_brute_force() {
        for seed in 0..60 {
            // Around the 3-SAT phase transition (ratio ~4.3) for hard mixes.
            let f = Cnf::random_ksat(6, 26, 3, seed);
            assert_eq!(satisfiable(&f), satisfiable_brute(&f), "seed {seed}: {f}");
        }
    }

    #[test]
    fn ksat_generator_shape() {
        let f = Cnf::random_ksat(10, 15, 3, 1);
        assert_eq!(f.clauses.len(), 15);
        for c in &f.clauses {
            assert_eq!(c.len(), 3);
            let mut vars: Vec<usize> = c.iter().map(|l| l.var).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3, "vars within a clause are distinct");
        }
        // Determinism.
        assert_eq!(f, Cnf::random_ksat(10, 15, 3, 1));
    }

    #[test]
    fn display_formats() {
        let f = cnf(2, &[&[(0, true), (1, false)]]);
        assert_eq!(format!("{f}"), "(x0 ∨ ¬x1)");
        assert_eq!(format!("{}", Cnf::trivial(0)), "⊤");
    }
}
