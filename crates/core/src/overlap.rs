//! Overlapping sets of false-intervals (the paper's Lemma 2, translated
//! faithfully from events to states under the *enforceable* semantics).
//!
//! A set of false intervals `I₁, …, Iₙ` (one per process) *overlaps* iff
//!
//! ```text
//! ∀ i ≠ j:  (pred(Iᵢ.lo) → succ(Iⱼ.hi))  ∨  (Iᵢ.lo = ⊥ᵢ)  ∨  (Iⱼ.hi = ⊤ⱼ)
//! ```
//!
//! `pred(Iᵢ.lo) → succ(Iⱼ.hi)` says the event *entering* `Iᵢ` happens-
//! before the event *ending* `Iⱼ`: process `j` cannot leave its interval
//! until `i` has entered its own. In any interleaved execution consider
//! the first process to exit its witness interval: a single step moves one
//! process, so at the cut just before that exit every other process has
//! entered (forced by the condition) and none has left — all local
//! predicates are simultaneously false. Hence every execution passes a
//! violating state; the disjunctive predicate is infeasible and no control
//! strategy exists. This is the *strong* (definitely) conjunctive
//! detection condition of Garg & Waldecker (the paper's reference \[4])
//! applied to `¬B`.
//!
//! ## Endpoint shifts, and which execution semantics this decides
//!
//! Two subtleties surfaced while reproducing the paper, both found by this
//! repository's property tests against exhaustive sequence-search oracles:
//!
//! 1. **The literal state-based reading (`Iᵢ.lo → Iⱼ.hi`) is incomplete.**
//!    Counterexample:
//!
//!    ```text
//!    P0: ok ─ ¬ok ─(send m0)─ ¬ok ─(recv m1)─ ok
//!    P1: ok ─(recv m0)─ ¬ok ─ ¬ok ─ ¬ok(send m1) = ⊤
//!    ```
//!
//!    `I₁.lo !→ I₀.hi` (the only path lands at `succ(I₀.hi)` via `m1`), so
//!    no literal overlap — yet P0 only turns true by receiving `m1`, sent
//!    from deep inside P1's false interval: every execution has both false
//!    simultaneously. The paper's formalism is event-flavoured; both
//!    endpoints must be shifted to the interval's entering/ending *events*,
//!    i.e. `pred(lo)`/`succ(hi)` in state terms.
//!
//! 2. **The paper's subset-step global sequences are strictly more
//!    permissive than message-based control.** When the only causal link
//!    is `pred(Iᵢ.lo) → succ(Iⱼ.hi)` with neither single shift (e.g. the
//!    message ending `Iⱼ` is sent by the very event entering `Iᵢ`), a
//!    global sequence may take a *simultaneous* step in which `i` enters
//!    exactly as `j` exits, dodging co-occurrence. But no asynchronous
//!    control system can realize exact simultaneity: enforcing "`y` not
//!    before `x`" with a message orders `y`'s entry strictly after `x`'s
//!    exit, which on such instances deadlocks (the exit itself awaits the
//!    entry). This workspace therefore targets the **enforceable**
//!    semantics throughout: feasibility ⟺ a satisfying *interleaving*
//!    exists ([`pctl_deposet::sequences::find_satisfying_interleaving`]),
//!    the overlap condition above is its exact complement on the
//!    algorithm's certificates, and every synthesized relation is
//!    realizable by real control messages (the replay engine proves it by
//!    construction). The paper's simultaneous-step SGSD is kept, verbatim,
//!    for the general NP-hardness results where it belongs.

use pctl_deposet::{CausalStore, FalseIntervals, Interval};

/// Check the overlap condition on one interval per process — see the
/// module docs for the endpoint-shift translation.
///
/// # Panics
/// Panics if `set` does not contain exactly one interval per process of
/// `dep`, in process order.
pub fn is_overlapping<C: CausalStore + ?Sized>(dep: &C, set: &[Interval]) -> bool {
    assert_eq!(set.len(), dep.process_count(), "one interval per process");
    for (i, iv) in set.iter().enumerate() {
        assert_eq!(iv.process.index(), i, "intervals must be in process order");
    }
    pctl_deposet::store::set_overlaps(dep, set)
}

/// Brute-force search for an overlapping set: tries every combination of
/// one false interval per process. Exponential (`O(pⁿ·n²)`) — reference
/// implementation for tests and small instances; the off-line algorithm
/// finds overlaps as a by-product in polynomial time.
///
/// Returns `None` if some process has no false interval (then the
/// disjunct of that process can never be all-false simultaneously) or no
/// combination overlaps.
pub fn find_overlap_brute<C: CausalStore + ?Sized>(
    dep: &C,
    intervals: &FalseIntervals,
) -> Option<Vec<Interval>> {
    let n = dep.process_count();
    let per: Vec<&[Interval]> = (0..n)
        .map(|p| intervals.of(pctl_deposet::ProcessId(p as u32)))
        .collect();
    if per.iter().any(|v| v.is_empty()) {
        return None;
    }
    let mut idx = vec![0usize; n];
    loop {
        let cand: Vec<Interval> = (0..n).map(|i| per[i][idx[i]]).collect();
        if is_overlapping(dep, &cand) {
            return Some(cand);
        }
        // Odometer increment.
        let mut carry = 0;
        loop {
            idx[carry] += 1;
            if idx[carry] < per[carry].len() {
                break;
            }
            idx[carry] = 0;
            carry += 1;
            if carry == n {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_deposet::{DeposetBuilder, DisjunctivePredicate};

    #[test]
    fn whole_process_intervals_overlap() {
        // Both processes false everywhere: lo = ⊥ for both ⇒ overlap.
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[]);
        b.internal(1, &[]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "never_set");
        let iv = FalseIntervals::extract(&dep, &pred);
        let w = find_overlap_brute(&dep, &iv).expect("overlap exists");
        assert!(is_overlapping(&dep, &w));
    }

    #[test]
    fn interior_concurrent_intervals_do_not_overlap() {
        // Interior false intervals with no causality: each can be crossed
        // before the other is entered ⇒ no overlap.
        let mut b = DeposetBuilder::new(2);
        for p in 0..2 {
            b.init_vars(p, &[("ok", 1)]);
            b.internal(p, &[("ok", 0)]);
            b.internal(p, &[("ok", 1)]);
        }
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        let iv = FalseIntervals::extract(&dep, &pred);
        assert_eq!(find_overlap_brute(&dep, &iv), None);
    }

    #[test]
    fn message_coupled_intervals_overlap() {
        // P0 goes false, tells P1; P1 goes false inside P0's false window
        // and tells P0 back before P0 recovers: neither can leave first.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 1)]);
        b.init_vars(1, &[("ok", 1)]);
        b.internal(0, &[("ok", 0)]);
        let t = b.send(0, "down");
        let t2 = b.send(1, "down2");
        b.recv(1, t, &[("ok", 0)]);
        b.internal(1, &[("ok", 1)]);
        b.recv(0, t2, &[]);
        b.internal(0, &[("ok", 1)]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        let iv = FalseIntervals::extract(&dep, &pred);
        // P0 false: from state 1 until the state before ok=1 again.
        // P1 false: exactly its recv state. Check overlap:
        // I0.lo → I1.hi via the "down" message ✓
        // I1.lo → I0.hi via the "down2" message (sent before P1 went false,
        //   received while P0 still false)… "down2" is sent from P1's state
        //   0 — before I1.lo — so I1.lo → I0.hi must come from elsewhere.
        let w = find_overlap_brute(&dep, &iv);
        // Whether this particular weave overlaps is decided by the brute
        // checker itself; assert agreement with is_overlapping on any hit.
        if let Some(w) = w {
            assert!(is_overlapping(&dep, &w));
        }
    }

    #[test]
    fn missing_interval_on_some_process_means_no_overlap() {
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 1)]);
        b.internal(1, &[]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        let iv = FalseIntervals::extract(&dep, &pred);
        assert!(
            !iv.of(pctl_deposet::ProcessId(0)).is_empty()
                || iv.of(pctl_deposet::ProcessId(0)).is_empty()
        );
        // P0 has no false interval ⇒ no overlapping set.
        assert_eq!(find_overlap_brute(&dep, &iv), None);
    }

    #[test]
    fn single_process_interval_is_vacuously_overlapping() {
        // With n = 1 the ∀ i ≠ j condition is empty: any false interval of
        // the sole process is an overlapping "set" — the predicate demands
        // ok on P0 while P0 is false, which no control can fix.
        let mut b = DeposetBuilder::new(1);
        b.init_vars(0, &[("ok", 1)]);
        b.internal(0, &[("ok", 0)]);
        b.internal(0, &[("ok", 1)]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(1, "ok");
        let iv = FalseIntervals::extract(&dep, &pred);
        assert_eq!(iv.total(), 1);
        let w = find_overlap_brute(&dep, &iv).expect("single-process overlap");
        assert!(is_overlapping(&dep, &w));
        assert_eq!(
            pctl_deposet::store::find_overlap(&dep, &iv).as_deref(),
            Some(&w[..])
        );
    }

    #[test]
    fn empty_interval_sets_never_overlap() {
        // No process is ever false ⇒ no intervals anywhere ⇒ no candidate
        // set exists on either search path.
        let mut b = DeposetBuilder::new(3);
        for p in 0..3 {
            b.init_vars(p, &[("ok", 1)]);
            b.internal(p, &[]);
        }
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(3, "ok");
        let iv = FalseIntervals::extract(&dep, &pred);
        assert_eq!(iv.total(), 0);
        assert_eq!(find_overlap_brute(&dep, &iv), None);
        assert_eq!(pctl_deposet::store::find_overlap(&dep, &iv), None);
    }

    #[test]
    fn intervals_touching_bottom_and_top_overlap_by_disjunct() {
        // P0 is *born* false and never recovers: its interval spans
        // ⊥₀ … ⊤₀, so for every pair both escape clauses of Lemma 2 are
        // available (`I₀.lo = ⊥₀` one way, `I₀.hi = ⊤₀` the other), and
        // the set overlaps with no causality between the processes at all.
        let mut b = DeposetBuilder::new(2);
        b.init_vars(0, &[("ok", 0)]);
        b.internal(0, &[]);
        b.init_vars(1, &[("ok", 1)]);
        b.internal(1, &[("ok", 0)]);
        let dep = b.finish().unwrap();
        let pred = DisjunctivePredicate::at_least_one(2, "ok");
        let iv = FalseIntervals::extract(&dep, &pred);
        let i0 = iv.of(pctl_deposet::ProcessId(0))[0];
        let i1 = iv.of(pctl_deposet::ProcessId(1))[0];
        assert_eq!(i0.lo, 0, "touches ⊥₀");
        assert_eq!(
            i0.hi as usize,
            dep.len_of(pctl_deposet::ProcessId(0)) - 1,
            "touches ⊤₀"
        );
        assert_eq!(
            i1.hi as usize,
            dep.len_of(pctl_deposet::ProcessId(1)) - 1,
            "touches ⊤₁"
        );
        assert!(is_overlapping(&dep, &[i0, i1]));
        assert!(find_overlap_brute(&dep, &iv).is_some());
        // Flip side: an interior interval against the ⊥…⊤ one still
        // overlaps (the all-false process can never be ordered around),
        // but two *interior* concurrent intervals would not — covered by
        // interior_concurrent_intervals_do_not_overlap above.
        assert!(pctl_deposet::store::pair_overlaps(&dep, &i1, &i0));
        assert!(pctl_deposet::store::pair_overlaps(&dep, &i0, &i1));
    }

    #[test]
    #[should_panic(expected = "one interval per process")]
    fn is_overlapping_rejects_wrong_arity() {
        let mut b = DeposetBuilder::new(2);
        b.internal(0, &[]);
        let dep = b.finish().unwrap();
        is_overlapping(&dep, &[]);
    }
}
