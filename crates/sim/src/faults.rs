//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes every deviation from the paper's idealized
//! model (reliable channels, immortal processes) that a run should
//! experience: per-link message drops, duplication, bounded extra delay,
//! timed network partitions, and scheduled process crashes with optional
//! restart. The plan is interpreted by the simulator with a dedicated RNG
//! stream derived from the run seed, so a run is fully reproducible from
//! `(seed, plan)` — and an empty plan leaves the simulation bit-for-bit
//! identical to a fault-free run (the fault stream is never sampled and no
//! extra events are scheduled).
//!
//! Faults are observable after the fact:
//! * counters `msgs_dropped`, `msgs_duplicated`, `crashes`, `restarts` in
//!   [`crate::Metrics`];
//! * crash windows in the trace as internal events setting the reserved
//!   variable `"down"` to 1 (crash) and 0 (restart) — unset variables read
//!   as 0, so fault-free traces are unchanged.

use crate::time::SimTime;
use pctl_deposet::ProcessId;

/// Per-link fault rates. `Default` is a clean link.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability that a message on this link is silently dropped.
    pub drop_p: f64,
    /// Probability that a message is delivered twice (the duplicate gets an
    /// independently sampled delay).
    pub dup_p: f64,
    /// Extra delivery delay, sampled uniformly from `0..=extra_delay_max`
    /// and added on top of the configured [`crate::DelayModel`]. Induces
    /// reordering beyond what the base model produces.
    pub extra_delay_max: u64,
}

impl LinkFaults {
    /// True when this link behaves like the paper's reliable channel.
    pub fn is_clean(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.extra_delay_max == 0
    }
}

/// A timed network partition: while active, messages crossing between
/// `side` and its complement are dropped (in both directions).
#[derive(Clone, Debug)]
pub struct Partition {
    /// First instant of the partition.
    pub start: SimTime,
    /// First instant after the partition (half-open window).
    pub end: SimTime,
    /// One side of the cut; every process not listed is on the other side.
    pub side: Vec<ProcessId>,
}

impl Partition {
    /// Does this partition sever the `src → dst` link at time `now`?
    pub fn severs(&self, src: ProcessId, dst: ProcessId, now: SimTime) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        self.side.contains(&src) != self.side.contains(&dst)
    }
}

/// A scheduled crash, with optional restart.
#[derive(Clone, Copy, Debug)]
pub struct Crash {
    /// Which process crashes.
    pub process: ProcessId,
    /// When it crashes. While down, the process receives nothing, its
    /// pending timers are cancelled, and messages addressed to it are lost.
    pub at: SimTime,
    /// Ticks until restart; `None` means the process stays down forever.
    /// On restart the process keeps its in-memory state (the simulator does
    /// not reset the state machine) but all pre-crash timers are stale;
    /// `Process::on_restart` runs so it can re-arm them.
    pub restart_after: Option<u64>,
}

/// The full fault schedule for one run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Fault rates applied to every link without a specific override.
    pub default_link: LinkFaults,
    /// Directed per-link overrides `(src, dst, faults)`; first match wins.
    pub links: Vec<(ProcessId, ProcessId, LinkFaults)>,
    /// Timed partition windows.
    pub partitions: Vec<Partition>,
    /// Scheduled crashes.
    pub crashes: Vec<Crash>,
}

impl FaultPlan {
    /// A plan injecting nothing — the simulator's zero-overhead fast path.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Uniform message loss on every link.
    pub fn uniform_loss(drop_p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_p),
            "drop probability out of range: {drop_p}"
        );
        FaultPlan {
            default_link: LinkFaults {
                drop_p,
                ..LinkFaults::default()
            },
            ..FaultPlan::default()
        }
    }

    /// Add a directed per-link override.
    pub fn with_link(mut self, src: ProcessId, dst: ProcessId, faults: LinkFaults) -> Self {
        self.links.push((src, dst, faults));
        self
    }

    /// Add a partition window cutting `side` off from everyone else during
    /// `[start, end)`.
    pub fn with_partition(mut self, start: SimTime, end: SimTime, side: Vec<ProcessId>) -> Self {
        assert!(start <= end, "partition window ends before it starts");
        self.partitions.push(Partition { start, end, side });
        self
    }

    /// Schedule a crash of `process` at `at`, restarting `restart_after`
    /// ticks later (or never, for `None`).
    pub fn with_crash(
        mut self,
        process: ProcessId,
        at: SimTime,
        restart_after: Option<u64>,
    ) -> Self {
        self.crashes.push(Crash {
            process,
            at,
            restart_after,
        });
        self
    }

    /// True when the plan injects nothing at all — the simulator uses this
    /// to keep the fault-free path bit-for-bit identical to the seed
    /// behavior.
    pub fn is_empty(&self) -> bool {
        self.default_link.is_clean()
            && self.links.iter().all(|(_, _, l)| l.is_clean())
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// Effective fault rates for the `src → dst` link.
    pub fn link(&self, src: ProcessId, dst: ProcessId) -> &LinkFaults {
        self.links
            .iter()
            .find(|(s, d, _)| *s == src && *d == dst)
            .map(|(_, _, l)| l)
            .unwrap_or(&self.default_link)
    }

    /// Is the `src → dst` link severed by a partition at time `now`?
    pub fn severed(&self, src: ProcessId, dst: ProcessId, now: SimTime) -> bool {
        self.partitions.iter().any(|p| p.severs(src, dst, now))
    }

    /// The crash plan as a flat event schedule, in the exact order the
    /// simulator must enqueue it: for each crash in plan order, the
    /// [`CrashPhase::Down`] entry, then (if the crash restarts) the
    /// [`CrashPhase::Up`] entry. The simulator schedules these *before*
    /// any process runs, so at equal times plan events always carry the
    /// lowest sequence numbers and win ties against deliveries.
    ///
    /// Panics if a crash targets a process outside `0..process_count`.
    pub fn crash_schedule(
        &self,
        process_count: usize,
    ) -> impl Iterator<Item = (SimTime, ProcessId, CrashPhase)> + '_ {
        self.crashes.iter().flat_map(move |c| {
            assert!(
                c.process.index() < process_count,
                "fault plan crashes unknown process {:?}",
                c.process
            );
            let down = (c.at, c.process, CrashPhase::Down);
            let up = c
                .restart_after
                .map(|after| (c.at + after, c.process, CrashPhase::Up));
            std::iter::once(down).chain(up)
        })
    }
}

/// One step of a crash's lifecycle in [`FaultPlan::crash_schedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPhase {
    /// The process goes down.
    Down,
    /// The process comes back up (only for crashes with a restart).
    Up,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_detection() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().is_empty());
        assert!(!FaultPlan::uniform_loss(0.1).is_empty());
        assert!(FaultPlan::uniform_loss(0.0).is_empty());
        let p = FaultPlan::none().with_crash(ProcessId(0), SimTime(5), None);
        assert!(!p.is_empty());
        let p = FaultPlan::none().with_partition(SimTime(1), SimTime(2), vec![ProcessId(0)]);
        assert!(!p.is_empty());
        // A link override that is itself clean still counts as empty.
        let p = FaultPlan::none().with_link(ProcessId(0), ProcessId(1), LinkFaults::default());
        assert!(p.is_empty());
    }

    #[test]
    fn link_overrides_are_directed() {
        let loud = LinkFaults {
            drop_p: 0.5,
            ..LinkFaults::default()
        };
        let plan = FaultPlan::none().with_link(ProcessId(0), ProcessId(1), loud.clone());
        assert_eq!(plan.link(ProcessId(0), ProcessId(1)), &loud);
        assert_eq!(
            plan.link(ProcessId(1), ProcessId(0)),
            &LinkFaults::default()
        );
        assert_eq!(
            plan.link(ProcessId(2), ProcessId(3)),
            &LinkFaults::default()
        );
    }

    #[test]
    fn partitions_sever_cross_side_links_during_window_only() {
        let plan = FaultPlan::none().with_partition(SimTime(10), SimTime(20), vec![ProcessId(0)]);
        let (a, b, c) = (ProcessId(0), ProcessId(1), ProcessId(2));
        assert!(plan.severed(a, b, SimTime(10)));
        assert!(plan.severed(b, a, SimTime(15)));
        assert!(plan.severed(a, c, SimTime(19)));
        // Same side stays connected.
        assert!(!plan.severed(b, c, SimTime(15)));
        // Window is half-open.
        assert!(!plan.severed(a, b, SimTime(9)));
        assert!(!plan.severed(a, b, SimTime(20)));
    }
}
