//! The discrete-event simulator: an actor-model engine.
//!
//! An asynchronous message-passing system in the paper's model: `n`
//! sequential processes, reliable channels, no shared memory, no message
//! ordering guarantees (delays are sampled per message). The simulator is
//! single-threaded and fully deterministic for a given seed — a property
//! the whole experiment harness leans on.
//!
//! Every send / receive / variable update is recorded into a
//! [`DeposetBuilder`], so a finished run yields the deposet of the traced
//! computation, ready for predicate detection and off-line control. This is
//! the "substitution" substrate described in DESIGN.md: the paper's
//! (unspecified) runtime becomes a simulator with parameterized message
//! delay `T`, which makes the paper's analytic overhead claims measurable.
//!
//! ## Engine shape (see DESIGN.md §15)
//!
//! Each process is a mailbox actor: in-flight payloads live in a
//! generation-checked [`PayloadArena`], scheduling moves only `Copy` events
//! through a hierarchical [`TimingWheel`], and execution proceeds in
//! *timestep batches* — the wheel yields every event due at the earliest
//! occupied time, deliveries are staged into per-process inboxes in global
//! `(time, seq)` order, and the run queue then executes them in exactly
//! that order. The end of a timestep is the paper's "controlled deadlock":
//! nothing at time `t` remains runnable, so the wheel advances.
//!
//! The batch structure is an implementation detail, not a semantic change:
//! dispatch order, RNG draw order, trace construction and metrics are
//! bit-for-bit identical to the original global-heap dispatcher (pinned by
//! golden fingerprints in `pctl-mutex` and the determinism proptests).

use crate::arena::{MsgHandle, PayloadArena};
use crate::faults::{CrashPhase, FaultPlan};
use crate::metrics::Metrics;
use crate::time::SimTime;
use crate::wheel::{TimingWheel, WheelEntry};
use pctl_causality::VectorClock;
use pctl_deposet::{Deposet, DeposetBuilder, MsgToken, ProcessId};
use pctl_obs::{Event, EventKind, NullRecorder, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::VecDeque;

/// Messages exchanged by simulated processes.
pub trait Payload: Clone + std::fmt::Debug + 'static {
    /// Short tag recorded in the trace (protocol step name).
    fn tag(&self) -> &'static str {
        "msg"
    }
    /// Control-plane messages are counted separately in the metrics
    /// (`msgs_ctrl` vs `msgs_app`).
    fn is_control(&self) -> bool {
        false
    }
}

/// Identifier of a pending timer, unique per simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(pub u64);

/// A simulated process: a reactive state machine.
///
/// Handlers receive a [`Ctx`] granting access to sends, timers, traced
/// variable updates, randomness and metrics.
pub trait Process<M: Payload> {
    /// Invoked once at time zero, in process-id order.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}
    /// Invoked when a message is delivered.
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Ctx<'_, M>);
    /// Invoked when a timer set through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _timer: TimerId, _ctx: &mut Ctx<'_, M>) {}
    /// Invoked when the process restarts after a scheduled crash (see
    /// [`crate::faults::Crash`]). In-memory state survives, but all timers
    /// set before the crash are stale — re-arm them here.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

/// Message delay distribution.
#[derive(Clone, Copy, Debug)]
pub enum DelayModel {
    /// Every message takes exactly this long.
    Fixed(u64),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Minimum delay.
        min: u64,
        /// Maximum delay (inclusive).
        max: u64,
    },
}

impl DelayModel {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, max } => rng.gen_range(min..=max),
        }
    }

    /// Mean delay `T` (used when checking the paper's response-time bounds).
    pub fn mean(&self) -> f64 {
        match *self {
            DelayModel::Fixed(d) => d as f64,
            // Widened per addend: `min + max` can overflow u64.
            DelayModel::Uniform { min, max } => (min as f64 + max as f64) / 2.0,
        }
    }
}

/// Hard cap on the number of processes, so lane indices always fit the
/// `u32` lanes used by trace events and `ProcessId` (the `MAX_ROWS`-style
/// guard used across the workspace).
pub const MAX_PROCESSES: usize = u32::MAX as usize;

/// Checked lane cast: every `ProcessId → u32` conversion in the engine
/// funnels through here instead of a bare `as` cast.
fn lane(p: ProcessId) -> u32 {
    u32::try_from(p.index()).expect("process lane exceeds u32 range")
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
    /// Message delay model (the paper's `T` is its mean).
    pub delay: DelayModel,
    /// Hard stop after this simulated time.
    pub max_time: SimTime,
    /// Hard stop after this many dispatched events.
    pub max_events: usize,
    /// Fault schedule. The default (empty) plan keeps the run bit-for-bit
    /// identical to the original fault-free simulator.
    pub faults: FaultPlan,
    /// Soft bound on a process's inbox depth. The simulator models
    /// *reliable* channels, so staging beyond the bound never drops a
    /// message — it increments [`CoreStats::inbox_overflows`] and shows up
    /// in [`CoreStats::inbox_high_water`], making runaway mailboxes
    /// observable without perturbing the run.
    pub inbox_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            delay: DelayModel::Fixed(10),
            max_time: SimTime(u64::MAX),
            max_events: 1_000_000,
            faults: FaultPlan::default(),
            inbox_capacity: 4096,
        }
    }
}

/// Why the run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Event queue drained: the system is quiescent. If processes report
    /// themselves unfinished this is a *deadlock* in the modeled protocol.
    Quiescent,
    /// `max_events` dispatched.
    MaxEvents,
    /// Simulated clock passed `max_time`.
    MaxTime,
}

/// Engine-level accounting for one run: how big the machinery itself got.
///
/// Deliberately kept *out* of [`Metrics`] — the metrics registry is part of
/// the bit-identity surface (fingerprinted against pre-refactor goldens),
/// while these gauges describe the engine, not the modeled system. The
/// arena/inbox/wheel high-water marks are the "memory proportional to live
/// state" evidence: they track peak in-flight messages and pending events,
/// not total traffic.
#[derive(Clone, Debug, Default, Serialize)]
pub struct CoreStats {
    /// Events dispatched (deliveries, timer fires, crashes, restarts).
    pub events_dispatched: u64,
    /// Distinct simulated times at which at least one event ran.
    pub timesteps: u64,
    /// Largest single timestep batch.
    pub max_batch: u64,
    /// Peak simultaneous in-flight message payloads.
    pub arena_high_water: u64,
    /// Arena slots ever allocated (its real footprint; `≥ high_water` only
    /// by free-list fragmentation, in practice equal).
    pub arena_slots: u64,
    /// Payloads still in flight when the run stopped (0 for quiescent runs).
    pub arena_live_at_end: u64,
    /// Peak depth of any single process inbox within a timestep.
    pub inbox_high_water: u64,
    /// Times a staged delivery found its inbox past
    /// [`SimConfig::inbox_capacity`] (soft bound: counted, never dropped).
    pub inbox_overflows: u64,
    /// Peak pending events in the scheduler (wheel + overflow heap).
    pub wheel_high_water: u64,
    /// Entries the timing wheel moved between levels while advancing.
    pub wheel_cascades: u64,
}

/// How one process ended the run — the refinement behind
/// [`SimResult::deadlocked`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessOutcome {
    /// Called [`Ctx::set_done`].
    Done,
    /// Crashed and still down at the end of the run.
    Down,
    /// Took part in the protocol (sent, received, or armed a timer) but
    /// never finished — starved waiting on messages that never came. This
    /// is the *protocol deadlock* predicate control exists to catch.
    Blocked,
    /// Never interacted with the protocol at all: a script that simply
    /// never calls `set_done` (or never ran). Not a protocol deadlock.
    Inert,
}

/// Result of a completed run.
pub struct SimResult {
    /// The traced computation.
    pub deposet: Deposet,
    /// Counters and samples accumulated via [`Ctx`].
    pub metrics: Metrics,
    /// Final simulated time.
    pub end_time: SimTime,
    /// Per-process "done" flags (set by [`Ctx::set_done`]).
    pub done: Vec<bool>,
    /// Why the run stopped.
    pub stopped: StopReason,
    /// The telemetry sink the run recorded into (a [`NullRecorder`] unless
    /// the simulation was built with [`Simulation::with_recorder`]).
    pub recorder: Box<dyn Recorder>,
    /// Engine accounting (arena/inbox/wheel gauges, batch shape).
    pub core: CoreStats,
    /// Per-process down flags at the end of the run.
    down: Vec<bool>,
    /// Per-process "took part in the protocol" flags.
    engaged: Vec<bool>,
}

impl SimResult {
    /// Quiescent but some process never reported done — a protocol-level
    /// deadlock *or* a process that simply never finishes its script. Use
    /// [`SimResult::outcomes`] / [`SimResult::protocol_deadlock`] /
    /// [`SimResult::never_finished`] to tell the two apart.
    pub fn deadlocked(&self) -> bool {
        self.stopped == StopReason::Quiescent && !self.done.iter().all(|&d| d)
    }

    /// Per-process end-of-run classification, in process-id order.
    pub fn outcomes(&self) -> Vec<ProcessOutcome> {
        (0..self.done.len())
            .map(|i| {
                if self.done[i] {
                    ProcessOutcome::Done
                } else if self.down[i] {
                    ProcessOutcome::Down
                } else if self.engaged[i] {
                    ProcessOutcome::Blocked
                } else {
                    ProcessOutcome::Inert
                }
            })
            .collect()
    }

    /// Quiescent with at least one *engaged* process starved mid-protocol —
    /// the genuine deadlock case (distinct from a script that never calls
    /// `set_done`; see [`SimResult::never_finished`]).
    pub fn protocol_deadlock(&self) -> bool {
        self.stopped == StopReason::Quiescent && self.outcomes().contains(&ProcessOutcome::Blocked)
    }

    /// Processes that ended unfinished without ever engaging the protocol
    /// (no send, no receive, no timer): scripts that never finish, not
    /// deadlock victims.
    pub fn never_finished(&self) -> Vec<ProcessId> {
        self.outcomes()
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == ProcessOutcome::Inert)
            .map(|(i, _)| ProcessId(u32::try_from(i).expect("process lane exceeds u32 range")))
            .collect()
    }

    /// Snapshot of the recorded telemetry (empty for null/streaming sinks).
    pub fn events(&self) -> Vec<Event> {
        self.recorder.snapshot()
    }
}

/// A scheduler event: `Copy`, payload-free (payloads stay in the arena).
/// These are what flow through the timing wheel and the run queue.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Deliver the in-flight payload behind `handle` to `dst`.
    Deliver {
        dst: ProcessId,
        handle: MsgHandle,
    },
    /// Fire a timer. `inc` pins the timer to the incarnation that set it,
    /// so timers armed before a crash never fire into the restarted
    /// incarnation.
    Timer {
        dst: ProcessId,
        id: TimerId,
        inc: u32,
    },
    Crash {
        dst: ProcessId,
    },
    Restart {
        dst: ProcessId,
    },
}

/// A run-queue token: one event of the current timestep batch, executed in
/// `seq` order.
#[derive(Clone, Copy, Debug)]
struct Tok {
    seq: u64,
    ev: Ev,
}

/// Everything a message carries besides its scheduling key: the payload,
/// its trace token, and telemetry baggage. Lives in the arena from send to
/// delivery.
struct InFlight<M> {
    src: ProcessId,
    msg: M,
    token: MsgToken,
    // Telemetry-only fields: the flow id pairing this delivery with its
    // send event, and the sender's vector clock at the send (present only
    // when recording).
    flow: u64,
    clock: Option<VectorClock>,
}

struct Inner<M> {
    wheel: TimingWheel<Ev>,
    arena: PayloadArena<InFlight<M>>,
    /// Per-process mailbox of staged (routed, not yet executed) deliveries.
    inboxes: Vec<VecDeque<MsgHandle>>,
    /// The current timestep's run queue. Zero-delay sends made *during*
    /// the batch append here (their seq is necessarily the largest yet, so
    /// appending preserves seq order).
    run_queue: Vec<Tok>,
    run_pos: usize,
    /// True while the run queue of the current timestep is executing.
    in_batch: bool,
    inbox_capacity: usize,
    stats: CoreStats,
    builder: DeposetBuilder,
    metrics: Metrics,
    rng: StdRng,
    delay: DelayModel,
    now: SimTime,
    seq: u64,
    next_timer: u64,
    done: Vec<bool>,
    /// Set when a process sends, receives, or arms a timer — the signal
    /// separating [`ProcessOutcome::Blocked`] from [`ProcessOutcome::Inert`].
    engaged: Vec<bool>,
    faults: FaultPlan,
    // Dedicated fault-decision stream: fault sampling must not perturb the
    // main `rng` stream handlers draw from, or a fault plan would change
    // the base behavior it is supposed to perturb.
    frng: StdRng,
    faulty: bool,
    down: Vec<bool>,
    incarnation: Vec<u32>,
    // Telemetry. `rec` is a NullRecorder unless the run asked for tracing;
    // `clocks` (live Fidge–Mattern clocks, one per process) and `next_flow`
    // are only advanced while recording, so a disabled recorder leaves the
    // run bit-identical — none of this ever touches `rng`/`frng`.
    rec: Box<dyn Recorder>,
    clocks: Vec<VectorClock>,
    next_flow: u64,
}

/// Seed offset separating the fault stream from the main stream.
const FAULT_STREAM_SALT: u64 = 0xFA_17_5E_ED_00_00_00_01;

impl<M: Payload> Inner<M> {
    /// Assign the next global sequence number and either enqueue the event
    /// in the wheel or, for zero-delay events scheduled mid-batch, append
    /// it to the live run queue (its seq is the largest so far, so the
    /// batch stays seq-sorted).
    fn schedule(&mut self, time: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq = self
            .seq
            .checked_add(1)
            .expect("scheduling sequence overflowed u64");
        debug_assert!(time >= self.now, "scheduling into the past");
        if self.in_batch && time == self.now {
            self.route(Tok { seq, ev });
        } else {
            self.wheel.push(time.0, seq, ev);
        }
    }

    /// Stage one event of the current timestep: deliveries go into the
    /// destination mailbox (bounded-inbox accounting happens here), and the
    /// token joins the run queue.
    fn route(&mut self, tok: Tok) {
        if let Ev::Deliver { dst, handle } = tok.ev {
            let inbox = &mut self.inboxes[dst.index()];
            inbox.push_back(handle);
            let depth = inbox.len() as u64;
            self.stats.inbox_high_water = self.stats.inbox_high_water.max(depth);
            if inbox.len() > self.inbox_capacity {
                self.stats.inbox_overflows += 1;
            }
        }
        self.run_queue.push(tok);
    }

    /// Record an instant event on `p`'s lane, stamped with its live clock.
    fn rec_instant(&mut self, p: ProcessId, name: &str) {
        if self.rec.enabled() {
            let clock = self.clocks[p.index()].entries().to_vec();
            self.rec
                .record(Event::instant(self.now.0, lane(p), name).with_clock(clock));
        }
    }

    /// Telemetry for one message copy leaving `src`: advance the sender's
    /// clock, allocate a flow id, and emit the send event. Returns the
    /// `(flow, clock)` pair the matching [`Ev::Deliver`] must carry;
    /// `(0, None)` when recording is off.
    fn rec_send(
        &mut self,
        src: ProcessId,
        dst: ProcessId,
        tag: &str,
    ) -> (u64, Option<VectorClock>) {
        if !self.rec.enabled() {
            return (0, None);
        }
        self.clocks[src.index()].tick(src);
        let flow = self.next_flow;
        self.next_flow = self
            .next_flow
            .checked_add(1)
            .expect("flow id overflowed u64");
        let clock = self.clocks[src.index()].clone();
        self.rec.record(Event {
            ts: self.now.0,
            lane: lane(src),
            name: tag.to_owned(),
            kind: EventKind::MsgSend {
                id: flow,
                to: lane(dst),
            },
            clock: Some(clock.entries().to_vec()),
        });
        (flow, Some(clock))
    }

    /// Park an in-flight payload in the arena and schedule its delivery.
    #[allow(clippy::too_many_arguments)]
    fn schedule_delivery(
        &mut self,
        src: ProcessId,
        dst: ProcessId,
        msg: M,
        token: MsgToken,
        at: SimTime,
        flow: u64,
        clock: Option<VectorClock>,
    ) {
        let handle = self.arena.alloc(InFlight {
            src,
            msg,
            token,
            flow,
            clock,
        });
        self.stats.arena_high_water = self
            .stats
            .arena_high_water
            .max(self.arena.high_water() as u64);
        self.schedule(at, Ev::Deliver { dst, handle });
    }

    /// Faulty-path continuation of [`Ctx::send`]: the send event is already
    /// traced and counted; decide the message's fate in the network.
    #[allow(clippy::too_many_arguments)]
    fn send_faulty(
        &mut self,
        src: ProcessId,
        dst: ProcessId,
        msg: M,
        token: MsgToken,
        at: SimTime,
        flow: u64,
        clock: Option<VectorClock>,
    ) {
        if self.faults.severed(src, dst, self.now) {
            self.metrics.add("msgs_dropped", 1);
            self.rec_instant(src, "msg_severed");
            // Dropping the token leaves the send in-flight; the builder
            // rewrites it to an internal event at finish().
            drop(token);
            return;
        }
        let link = self.faults.link(src, dst).clone();
        if link.drop_p > 0.0 && self.frng.gen_bool(link.drop_p) {
            self.metrics.add("msgs_dropped", 1);
            self.rec_instant(src, "msg_dropped");
            return;
        }
        let mut at = at;
        if link.extra_delay_max > 0 {
            at += self.frng.gen_range(0..=link.extra_delay_max);
        }
        if link.dup_p > 0.0 && self.frng.gen_bool(link.dup_p) {
            // A duplicate needs its own send event: the trace model requires
            // every received message to have a matching send, so channel
            // duplication appears in the deposet as a second send by `src`.
            let token2 = self.builder.send_with(src, msg.tag(), &[]);
            let (flow2, clock2) = self.rec_send(src, dst, msg.tag());
            let mut at2 = self.now + self.delay.sample(&mut self.frng);
            if link.extra_delay_max > 0 {
                at2 += self.frng.gen_range(0..=link.extra_delay_max);
            }
            self.metrics.add("msgs_duplicated", 1);
            self.rec_instant(src, "msg_duplicated");
            let msg2 = msg.clone();
            self.schedule_delivery(src, dst, msg2, token2, at2, flow2, clock2);
        }
        self.schedule_delivery(src, dst, msg, token, at, flow, clock);
    }
}

/// Handler-side capability to the simulation world.
pub struct Ctx<'a, M: Payload> {
    me: ProcessId,
    inner: &'a mut Inner<M>,
}

impl<M: Payload> Ctx<'_, M> {
    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// Send `msg` to `to`; the delivery delay is sampled from the
    /// configured model. The send is recorded in the trace.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        let delay = self.inner.delay.sample(&mut self.inner.rng);
        let token = self.inner.builder.send_with(self.me, msg.tag(), &[]);
        self.inner.engaged[self.me.index()] = true;
        self.inner.metrics.add("msgs_total", 1);
        if msg.is_control() {
            self.inner.metrics.add("msgs_ctrl", 1);
        } else {
            self.inner.metrics.add("msgs_app", 1);
        }
        let (flow, clock) = self.inner.rec_send(self.me, to, msg.tag());
        let at = self.inner.now + delay;
        if !self.inner.faulty {
            self.inner
                .schedule_delivery(self.me, to, msg, token, at, flow, clock);
            return;
        }
        self.inner
            .send_faulty(self.me, to, msg, token, at, flow, clock);
    }

    /// Set a timer `delay` ticks from now.
    pub fn set_timer(&mut self, delay: u64) -> TimerId {
        let id = TimerId(self.inner.next_timer);
        self.inner.next_timer = self
            .inner
            .next_timer
            .checked_add(1)
            .expect("timer id overflowed u64");
        self.inner.engaged[self.me.index()] = true;
        let at = self.inner.now + delay;
        let inc = self.inner.incarnation[self.me.index()];
        self.inner.schedule(
            at,
            Ev::Timer {
                dst: self.me,
                id,
                inc,
            },
        );
        id
    }

    /// Update traced variables: records one internal event whose new state
    /// has `updates` applied (one local step in the paper's model). When
    /// recording, each update also emits a counter sample, so traced
    /// variables (and so predicate truth intervals) render as step
    /// functions in the exported timeline.
    pub fn step(&mut self, updates: &[(&str, i64)]) {
        self.inner.builder.internal(self.me, updates);
        if self.inner.rec.enabled() {
            self.inner.clocks[self.me.index()].tick(self.me);
            let clock = self.inner.clocks[self.me.index()].entries().to_vec();
            for (name, value) in updates {
                self.inner.rec.record(
                    Event::counter(self.inner.now.0, lane(self.me), name, *value)
                        .with_clock(clock.clone()),
                );
            }
        }
    }

    /// Set variables on this process's *initial* state. Only valid before
    /// the process has taken any traced step (typically from `on_start`).
    pub fn init_var(&mut self, name: &str, value: i64) {
        self.inner.builder.init_vars(self.me, &[(name, value)]);
    }

    /// Label the process's current state (for figure-style traces).
    pub fn label(&mut self, label: &str) {
        self.inner.builder.label(self.me, label);
    }

    /// Read back a traced variable of this process.
    pub fn var(&self, name: &str) -> Option<i64> {
        self.inner.builder.var(self.me, name)
    }

    /// Id of this process's current traced state (e.g. to remember where a
    /// snapshot was taken).
    pub fn current_state(&self) -> pctl_deposet::StateId {
        self.inner.builder.current(self.me)
    }

    /// Mark this process as finished with its script.
    pub fn set_done(&mut self) {
        self.inner.done[self.me.index()] = true;
    }

    /// Increment a metric counter.
    pub fn count(&mut self, name: &str, by: u64) {
        self.inner.metrics.add(name, by);
    }

    /// Record a metric sample (e.g. a response time).
    pub fn record(&mut self, name: &str, value: u64) {
        self.inner.metrics.record(name, value);
    }

    /// Uniform random integer in `[0, bound)`.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        self.inner.rng.gen_range(0..bound)
    }

    /// Uniform random integer in `[lo, hi]`.
    pub fn rand_range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.rng.gen_range(lo..=hi)
    }

    /// Bernoulli sample.
    pub fn rand_bool(&mut self, p: f64) -> bool {
        self.inner.rng.gen_bool(p)
    }

    // ---- telemetry ----
    //
    // All trace_* calls are no-ops under a disabled recorder. They annotate
    // the run (protocol decisions, blocked windows, custom samples) without
    // advancing the process's clock — annotations are not model events.

    /// Whether a live recorder is attached. Use to skip building expensive
    /// event names on the fast path.
    pub fn recording(&self) -> bool {
        self.inner.rec.enabled()
    }

    /// Record a point-in-time occurrence on this process's lane.
    pub fn trace_instant(&mut self, name: &str) {
        self.inner.rec_instant(self.me, name);
    }

    /// Open a named span on this process's lane (e.g. a blocked wait or a
    /// critical section). Close it with [`Ctx::trace_end`]; same-name spans
    /// nest.
    pub fn trace_begin(&mut self, name: &str) {
        if self.inner.rec.enabled() {
            let clock = self.inner.clocks[self.me.index()].entries().to_vec();
            self.inner.rec.record(Event {
                ts: self.inner.now.0,
                lane: lane(self.me),
                name: name.to_owned(),
                kind: EventKind::SpanBegin,
                clock: Some(clock),
            });
        }
    }

    /// Close the innermost open span with this name on this process's lane.
    pub fn trace_end(&mut self, name: &str) {
        if self.inner.rec.enabled() {
            let clock = self.inner.clocks[self.me.index()].entries().to_vec();
            self.inner.rec.record(Event {
                ts: self.inner.now.0,
                lane: lane(self.me),
                name: name.to_owned(),
                kind: EventKind::SpanEnd,
                clock: Some(clock),
            });
        }
    }

    /// Record a sampled value on this process's lane (renders as a counter
    /// track).
    pub fn trace_counter(&mut self, name: &str, value: i64) {
        if self.inner.rec.enabled() {
            let clock = self.inner.clocks[self.me.index()].entries().to_vec();
            self.inner.rec.record(
                Event::counter(self.inner.now.0, lane(self.me), name, value).with_clock(clock),
            );
        }
    }
}

/// A deterministic discrete-event simulation over processes exchanging `M`.
pub struct Simulation<M: Payload> {
    procs: Vec<Option<Box<dyn Process<M>>>>,
    inner: Inner<M>,
    config: SimConfig,
    /// `(cell, every)` — publish the metrics registry into `cell` every
    /// `every` dispatched events (and once at the end of the run).
    live: Option<(crate::metrics::LiveMetrics, u64)>,
}

impl<M: Payload> Simulation<M> {
    /// Create a simulation over the given processes (process `i` gets id
    /// `Pᵢ`).
    pub fn new(config: SimConfig, processes: Vec<Box<dyn Process<M>>>) -> Self {
        Simulation::with_recorder(config, processes, Box::new(NullRecorder))
    }

    /// Like [`Simulation::new`], but with a telemetry sink. Recording is
    /// strictly observational: it never touches the simulation's RNG
    /// streams, so a traced run is bit-identical to an untraced one.
    pub fn with_recorder(
        config: SimConfig,
        processes: Vec<Box<dyn Process<M>>>,
        recorder: Box<dyn Recorder>,
    ) -> Self {
        let n = processes.len();
        assert!(n <= MAX_PROCESSES, "process count exceeds u32 lane range");
        let mut builder = DeposetBuilder::new(n);
        builder.allow_in_flight();
        let faulty = !config.faults.is_empty();
        Simulation {
            procs: processes.into_iter().map(Some).collect(),
            inner: Inner {
                wheel: TimingWheel::new(0),
                arena: PayloadArena::new(),
                inboxes: (0..n).map(|_| VecDeque::new()).collect(),
                run_queue: Vec::new(),
                run_pos: 0,
                in_batch: false,
                inbox_capacity: config.inbox_capacity,
                stats: CoreStats::default(),
                builder,
                metrics: Metrics::default(),
                rng: StdRng::seed_from_u64(config.seed),
                delay: config.delay,
                now: SimTime::ZERO,
                seq: 0,
                next_timer: 0,
                done: vec![false; n],
                engaged: vec![false; n],
                faults: config.faults.clone(),
                frng: StdRng::seed_from_u64(config.seed ^ FAULT_STREAM_SALT),
                faulty,
                down: vec![false; n],
                incarnation: vec![0; n],
                rec: recorder,
                clocks: vec![VectorClock::zero(n); n],
                next_flow: 0,
            },
            config,
            live: None,
        }
    }

    /// Publish live metrics: every `every_events` dispatched events (and
    /// once when the run ends) the metrics registry is rendered as
    /// Prometheus text into `cell`, where a `/metrics` endpoint can read
    /// it. Publishing is strictly observational — it never perturbs the
    /// run.
    pub fn publish_live(&mut self, cell: crate::metrics::LiveMetrics, every_events: u64) {
        self.live = Some((cell, every_events.max(1)));
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    fn dispatch<F>(&mut self, p: ProcessId, f: F)
    where
        F: FnOnce(&mut dyn Process<M>, &mut Ctx<'_, M>),
    {
        let mut proc = self.procs[p.index()].take().expect("no reentrant dispatch");
        {
            let mut ctx = Ctx {
                me: p,
                inner: &mut self.inner,
            };
            f(proc.as_mut(), &mut ctx);
        }
        self.procs[p.index()] = Some(proc);
    }

    /// Run to quiescence (or a configured limit) and return the traced
    /// computation plus metrics.
    ///
    /// The loop alternates two phases per timestep: *route* — the wheel's
    /// batch of same-time events is staged into per-process mailboxes in
    /// global `(time, seq)` order — and *run* — the staged tokens execute
    /// in exactly that order, with zero-delay follow-ups appended to the
    /// live batch. When the batch drains the timestep is over (the paper's
    /// controlled deadlock) and the wheel advances. Dispatch order is
    /// therefore identical to the old single-heap loop, which the golden
    /// fingerprints and determinism proptests pin down.
    pub fn run(mut self) -> SimResult {
        let n = self.procs.len();
        // Schedule the crash plan before anything else so crash/restart
        // order among same-time events is fixed (and independent of what
        // the processes do): plan entries take the lowest seq numbers, so
        // at equal times a crash always dispatches before deliveries.
        let plan: Vec<_> = self.inner.faults.crash_schedule(n).collect();
        for (at, p, phase) in plan {
            let ev = match phase {
                CrashPhase::Down => Ev::Crash { dst: p },
                CrashPhase::Up => Ev::Restart { dst: p },
            };
            self.inner.schedule(at, ev);
        }
        for i in 0..n {
            let p = ProcessId(u32::try_from(i).expect("process lane exceeds u32 range"));
            self.dispatch(p, |p, ctx| p.on_start(ctx));
        }
        let mut dispatched = 0usize;
        let mut batch: Vec<WheelEntry<Ev>> = Vec::new();
        let stopped = 'outer: loop {
            let Some(t) = self.inner.wheel.pop_batch(&mut batch) else {
                break StopReason::Quiescent;
            };
            let t = SimTime(t);
            debug_assert!(t >= self.inner.now, "timesteps advance monotonically");
            self.inner.stats.timesteps += 1;
            self.inner.stats.max_batch = self.inner.stats.max_batch.max(batch.len() as u64);
            // Route phase: stage the batch in seq order.
            self.inner.run_queue.clear();
            self.inner.run_pos = 0;
            for e in batch.drain(..) {
                self.inner.route(Tok {
                    seq: e.seq,
                    ev: e.item,
                });
            }
            // Run phase.
            self.inner.in_batch = true;
            let mut prev_seq: Option<u64> = None;
            while self.inner.run_pos < self.inner.run_queue.len() {
                let tok = self.inner.run_queue[self.inner.run_pos];
                self.inner.run_pos += 1;
                if t > self.config.max_time {
                    self.inner.in_batch = false;
                    break 'outer StopReason::MaxTime;
                }
                if dispatched >= self.config.max_events {
                    self.inner.in_batch = false;
                    break 'outer StopReason::MaxEvents;
                }
                dispatched += 1;
                if let Some((cell, every)) = &self.live {
                    if (dispatched as u64).is_multiple_of(*every) {
                        cell.publish(self.inner.metrics.to_prometheus("pctl_sim_"));
                    }
                }
                // Equal-time events — including Crash/Restart interleaved
                // with deliveries to the same process — must dispatch in
                // seq order; this is the engine's core ordering invariant.
                debug_assert!(
                    prev_seq.is_none_or(|p| tok.seq > p),
                    "same-time dispatch out of seq order"
                );
                prev_seq = Some(tok.seq);
                self.inner.now = t;
                match tok.ev {
                    Ev::Deliver { dst, handle } => {
                        let staged = self.inner.inboxes[dst.index()]
                            .pop_front()
                            .expect("mailbox drained out of sync with run queue");
                        debug_assert_eq!(staged, handle, "mailbox/run-queue coherence");
                        let InFlight {
                            src,
                            msg,
                            token,
                            flow,
                            clock,
                        } = self.inner.arena.take(staged);
                        if self.inner.down[dst.index()] {
                            // Lost at a dead receiver; the unreceived token
                            // is rewritten to an internal event at finish().
                            self.inner.metrics.add("msgs_dropped", 1);
                            self.inner.rec_instant(dst, "msg_lost_receiver_down");
                            drop(token);
                        } else {
                            self.inner.engaged[dst.index()] = true;
                            self.inner.builder.recv(dst, token, &[]);
                            if self.inner.rec.enabled() {
                                if let Some(sender_clock) = &clock {
                                    self.inner.clocks[dst.index()].merge(sender_clock);
                                }
                                self.inner.clocks[dst.index()].tick(dst);
                                let entries = self.inner.clocks[dst.index()].entries().to_vec();
                                self.inner.rec.record(Event {
                                    ts: self.inner.now.0,
                                    lane: lane(dst),
                                    name: msg.tag().to_owned(),
                                    kind: EventKind::MsgRecv {
                                        id: flow,
                                        from: lane(src),
                                    },
                                    clock: Some(entries),
                                });
                            }
                            self.dispatch(dst, |p, ctx| p.on_message(src, msg, ctx));
                        }
                    }
                    Ev::Timer { dst, id, inc } => {
                        // Stale timers (armed by a dead or pre-crash
                        // incarnation) are discarded silently.
                        if !self.inner.down[dst.index()]
                            && inc == self.inner.incarnation[dst.index()]
                        {
                            self.inner.engaged[dst.index()] = true;
                            self.dispatch(dst, |p, ctx| p.on_timer(id, ctx));
                        }
                    }
                    Ev::Crash { dst } => {
                        if !self.inner.down[dst.index()] {
                            self.inner.down[dst.index()] = true;
                            self.inner.metrics.add("crashes", 1);
                            self.inner.builder.internal(dst, &[("down", 1)]);
                            self.inner.rec_instant(dst, "crash");
                        }
                    }
                    Ev::Restart { dst } => {
                        if self.inner.down[dst.index()] {
                            self.inner.down[dst.index()] = false;
                            self.inner.incarnation[dst.index()] += 1;
                            self.inner.metrics.add("restarts", 1);
                            self.inner.builder.internal(dst, &[("down", 0)]);
                            self.inner.rec_instant(dst, "restart");
                            self.dispatch(dst, |p, ctx| p.on_restart(ctx));
                        }
                    }
                }
            }
            self.inner.in_batch = false;
        };
        self.inner.in_batch = false;
        let Inner {
            builder,
            metrics,
            now,
            done,
            mut rec,
            mut stats,
            arena,
            wheel,
            down,
            engaged,
            ..
        } = self.inner;
        stats.events_dispatched = dispatched as u64;
        stats.arena_high_water = arena.high_water() as u64;
        stats.arena_slots = arena.capacity() as u64;
        stats.arena_live_at_end = arena.live() as u64;
        stats.wheel_high_water = wheel.high_water() as u64;
        stats.wheel_cascades = wheel.cascades();
        rec.flush();
        if let Some((cell, _)) = &self.live {
            // Final publish so short runs still expose their end state.
            cell.publish(metrics.to_prometheus("pctl_sim_"));
        }
        let deposet = builder
            .finish()
            .expect("simulator traces are valid deposets");
        SimResult {
            deposet,
            metrics,
            end_time: now,
            done,
            stopped,
            recorder: rec,
            core: stats,
            down,
            engaged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pctl_deposet::trace;

    #[derive(Clone, Debug)]
    enum Ping {
        Ping(u32),
        Pong(u32),
    }

    impl Payload for Ping {
        fn tag(&self) -> &'static str {
            match self {
                Ping::Ping(_) => "ping",
                Ping::Pong(_) => "pong",
            }
        }
    }

    /// P0 pings P1 `rounds` times; P1 pongs back.
    struct Pinger {
        rounds: u32,
        sent_at: SimTime,
    }
    struct Ponger;

    impl Process<Ping> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            ctx.init_var("round", 0);
            self.sent_at = ctx.now();
            ctx.send(ProcessId(1), Ping::Ping(0));
        }
        fn on_message(&mut self, _from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping>) {
            let Ping::Pong(r) = msg else {
                panic!("pinger only gets pongs")
            };
            ctx.record("rtt", ctx.now().since(self.sent_at));
            ctx.step(&[("round", i64::from(r) + 1)]);
            if r + 1 < self.rounds {
                self.sent_at = ctx.now();
                ctx.send(ProcessId(1), Ping::Ping(r + 1));
            } else {
                ctx.set_done();
            }
        }
    }

    impl Process<Ping> for Ponger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            ctx.set_done();
        }
        fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping>) {
            let Ping::Ping(r) = msg else {
                panic!("ponger only gets pings")
            };
            ctx.send(from, Ping::Pong(r));
            ctx.count("pongs", 1);
        }
    }

    fn ping_sim(seed: u64, rounds: u32) -> SimResult {
        let config = SimConfig {
            seed,
            delay: DelayModel::Uniform { min: 5, max: 15 },
            ..SimConfig::default()
        };
        Simulation::new(
            config,
            vec![
                Box::new(Pinger {
                    rounds,
                    sent_at: SimTime::ZERO,
                }),
                Box::new(Ponger),
            ],
        )
        .run()
    }

    #[test]
    fn ping_pong_runs_to_quiescence() {
        let r = ping_sim(1, 3);
        assert_eq!(r.stopped, StopReason::Quiescent);
        assert!(!r.deadlocked());
        assert_eq!(r.metrics.counter("pongs"), 3);
        assert_eq!(r.metrics.counter("msgs_total"), 6);
        assert_eq!(r.metrics.summary("rtt").unwrap().count, 3);
        // RTT within [2*min, 2*max] of the delay model.
        let s = r.metrics.summary("rtt").unwrap();
        assert!(s.min >= 10 && s.max <= 30);
    }

    #[test]
    fn trace_is_a_valid_deposet_with_expected_causality() {
        let r = ping_sim(2, 2);
        let d = r.deposet;
        assert_eq!(d.process_count(), 2);
        assert_eq!(d.messages().len(), 4);
        // Round counter var steps appear on P0.
        let p0 = ProcessId(0);
        let last = d.top(p0);
        assert_eq!(d.state(last).vars.get("round"), Some(2));
        // Every message's endpoints causally ordered.
        for m in d.messages() {
            assert!(d.precedes(m.from, m.to));
        }
        // Round-trips serialize.
        let json = trace::to_json(&d);
        assert!(trace::from_json(&json).is_ok());
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let a = ping_sim(7, 3);
        let b = ping_sim(7, 3);
        assert_eq!(trace::to_json(&a.deposet), trace::to_json(&b.deposet));
        assert_eq!(a.end_time, b.end_time);
        let c = ping_sim(8, 3);
        // Delays differ with overwhelming probability.
        assert!(
            a.end_time != c.end_time || trace::to_json(&a.deposet) != trace::to_json(&c.deposet)
        );
    }

    #[test]
    fn timers_fire_in_order() {
        struct T {
            fired: Vec<u64>,
        }
        #[derive(Clone, Debug)]
        struct NoMsg;
        impl Payload for NoMsg {}
        impl Process<NoMsg> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, NoMsg>) {
                ctx.set_timer(30);
                ctx.set_timer(10);
                ctx.set_timer(20);
            }
            fn on_message(&mut self, _: ProcessId, _: NoMsg, _: &mut Ctx<'_, NoMsg>) {}
            fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, NoMsg>) {
                self.fired.push(ctx.now().0);
                ctx.step(&[("fired", self.fired.len() as i64)]);
                if self.fired.len() == 3 {
                    ctx.set_done();
                }
            }
        }
        let r = Simulation::new(
            SimConfig::default(),
            vec![Box::new(T { fired: vec![] }) as Box<dyn Process<NoMsg>>],
        )
        .run();
        assert!(!r.deadlocked());
        assert_eq!(r.end_time, SimTime(30));
        let d = r.deposet;
        assert_eq!(d.state(d.top(ProcessId(0))).vars.get("fired"), Some(3));
    }

    #[test]
    fn uniform_delays_can_reorder_messages() {
        // The paper's model places no constraints on message ordering; the
        // Uniform delay model realizes reordering on a single channel.
        struct Sender;
        struct Receiver {
            got: Vec<u32>,
        }
        #[derive(Clone, Debug)]
        struct Seq(u32);
        impl Payload for Seq {}
        impl Process<Seq> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Seq>) {
                for i in 0..20 {
                    ctx.send(ProcessId(1), Seq(i));
                }
                ctx.set_done();
            }
            fn on_message(&mut self, _: ProcessId, _: Seq, _: &mut Ctx<'_, Seq>) {}
        }
        impl Process<Seq> for Receiver {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Seq>) {
                ctx.set_done();
            }
            fn on_message(&mut self, _: ProcessId, m: Seq, ctx: &mut Ctx<'_, Seq>) {
                self.got.push(m.0);
                ctx.step(&[("received", m.0 as i64)]);
            }
        }
        // Shared cell to read the order back out.
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Capture {
            inner: Receiver,
            slot: Rc<RefCell<Vec<u32>>>,
        }
        impl Process<Seq> for Capture {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Seq>) {
                self.inner.on_start(ctx);
            }
            fn on_message(&mut self, f: ProcessId, m: Seq, ctx: &mut Ctx<'_, Seq>) {
                self.inner.on_message(f, m, ctx);
                *self.slot.borrow_mut() = self.inner.got.clone();
            }
        }
        let slot = Rc::new(RefCell::new(Vec::new()));
        let cfg = SimConfig {
            seed: 5,
            delay: DelayModel::Uniform { min: 1, max: 50 },
            ..SimConfig::default()
        };
        let r = Simulation::new(
            cfg,
            vec![
                Box::new(Sender) as Box<dyn Process<Seq>>,
                Box::new(Capture {
                    inner: Receiver { got: vec![] },
                    slot: Rc::clone(&slot),
                }),
            ],
        )
        .run();
        assert_eq!(r.stopped, StopReason::Quiescent);
        let got = slot.borrow().clone();
        assert_eq!(got.len(), 20, "reliable channels deliver everything");
        assert!(
            got.windows(2).any(|w| w[0] > w[1]),
            "uniform delays should reorder at least one pair: {got:?}"
        );
        // And the trace is still a valid deposet.
        assert_eq!(r.deposet.messages().len(), 20);
    }

    #[test]
    fn fixed_delays_preserve_fifo() {
        // Chandy–Lamport (detect::snapshot) depends on this property.
        struct Sender;
        #[derive(Clone, Debug)]
        struct Seq(u32);
        impl Payload for Seq {}
        impl Process<Seq> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Seq>) {
                for i in 0..20 {
                    ctx.send(ProcessId(1), Seq(i));
                }
                ctx.set_done();
            }
            fn on_message(&mut self, _: ProcessId, _: Seq, _: &mut Ctx<'_, Seq>) {}
        }
        struct InOrder {
            next: u32,
        }
        impl Process<Seq> for InOrder {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Seq>) {
                ctx.set_done();
            }
            fn on_message(&mut self, _: ProcessId, m: Seq, _: &mut Ctx<'_, Seq>) {
                assert_eq!(m.0, self.next, "FIFO violated");
                self.next += 1;
            }
        }
        let cfg = SimConfig {
            seed: 9,
            delay: DelayModel::Fixed(7),
            ..SimConfig::default()
        };
        let r = Simulation::new(
            cfg,
            vec![
                Box::new(Sender) as Box<dyn Process<Seq>>,
                Box::new(InOrder { next: 0 }),
            ],
        )
        .run();
        assert_eq!(r.stopped, StopReason::Quiescent);
    }

    #[test]
    fn deadlock_detection_via_done_flags() {
        // A process that never sends and never finishes.
        struct Stuck;
        #[derive(Clone, Debug)]
        struct NoMsg;
        impl Payload for NoMsg {}
        impl Process<NoMsg> for Stuck {
            fn on_message(&mut self, _: ProcessId, _: NoMsg, _: &mut Ctx<'_, NoMsg>) {}
        }
        let r = Simulation::new(SimConfig::default(), vec![Box::new(Stuck) as _]).run();
        assert_eq!(r.stopped, StopReason::Quiescent);
        assert!(r.deadlocked());
        // Refinement: Stuck never engaged the protocol — it is inert, not
        // deadlocked mid-protocol.
        assert_eq!(r.outcomes(), vec![ProcessOutcome::Inert]);
        assert!(!r.protocol_deadlock());
        assert_eq!(r.never_finished(), vec![ProcessId(0)]);
    }

    #[test]
    fn blocked_waiters_report_protocol_deadlock() {
        // Both processes send one request and then wait forever for a
        // response that never comes: engaged but starved.
        struct Waiter;
        #[derive(Clone, Debug)]
        struct Req;
        impl Payload for Req {}
        impl Process<Req> for Waiter {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Req>) {
                let other = ProcessId(1 - ctx.me().0);
                ctx.send(other, Req);
            }
            fn on_message(&mut self, _: ProcessId, _: Req, _: &mut Ctx<'_, Req>) {
                // Swallow the request; never answer, never finish.
            }
        }
        let r = Simulation::new(
            SimConfig::default(),
            vec![Box::new(Waiter) as _, Box::new(Waiter) as _],
        )
        .run();
        assert!(r.deadlocked(), "legacy predicate still holds");
        assert!(r.protocol_deadlock(), "both engaged and starved");
        assert_eq!(
            r.outcomes(),
            vec![ProcessOutcome::Blocked, ProcessOutcome::Blocked]
        );
        assert!(r.never_finished().is_empty());
    }

    #[test]
    fn explicit_empty_fault_plan_is_bit_identical_to_default() {
        let a = ping_sim(11, 3);
        let cfg = SimConfig {
            seed: 11,
            delay: DelayModel::Uniform { min: 5, max: 15 },
            faults: crate::faults::FaultPlan::none(),
            ..SimConfig::default()
        };
        let b = Simulation::new(
            cfg,
            vec![
                Box::new(Pinger {
                    rounds: 3,
                    sent_at: SimTime::ZERO,
                }) as Box<dyn Process<Ping>>,
                Box::new(Ponger),
            ],
        )
        .run();
        assert_eq!(trace::to_json(&a.deposet), trace::to_json(&b.deposet));
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(
            serde_json::to_string(&a.metrics).unwrap(),
            serde_json::to_string(&b.metrics).unwrap()
        );
    }

    #[test]
    fn message_loss_drops_and_counts() {
        // Sender fires 200 one-way messages through a 30%-lossy network.
        struct Blast;
        #[derive(Clone, Debug)]
        struct B;
        impl Payload for B {}
        impl Process<B> for Blast {
            fn on_start(&mut self, ctx: &mut Ctx<'_, B>) {
                if ctx.me() == ProcessId(0) {
                    for _ in 0..200 {
                        ctx.send(ProcessId(1), B);
                    }
                }
                ctx.set_done();
            }
            fn on_message(&mut self, _: ProcessId, _: B, ctx: &mut Ctx<'_, B>) {
                ctx.count("delivered", 1);
            }
        }
        let cfg = SimConfig {
            seed: 3,
            faults: crate::faults::FaultPlan::uniform_loss(0.3),
            ..SimConfig::default()
        };
        let r = Simulation::new(cfg, vec![Box::new(Blast) as _, Box::new(Blast) as _]).run();
        let dropped = r.metrics.counter("msgs_dropped");
        let delivered = r.metrics.counter("delivered");
        assert_eq!(dropped + delivered, 200);
        assert!(
            (30..90).contains(&dropped),
            "≈30% of 200 should drop, got {dropped}"
        );
        // Dropped sends are rewritten to internal events: the deposet only
        // keeps delivered messages.
        assert_eq!(r.deposet.messages().len() as u64, delivered);
    }

    #[test]
    fn duplication_delivers_twice_and_counts() {
        struct Blast;
        #[derive(Clone, Debug)]
        struct B;
        impl Payload for B {}
        impl Process<B> for Blast {
            fn on_start(&mut self, ctx: &mut Ctx<'_, B>) {
                if ctx.me() == ProcessId(0) {
                    for _ in 0..100 {
                        ctx.send(ProcessId(1), B);
                    }
                }
                ctx.set_done();
            }
            fn on_message(&mut self, _: ProcessId, _: B, ctx: &mut Ctx<'_, B>) {
                ctx.count("delivered", 1);
            }
        }
        let faults = crate::faults::FaultPlan {
            default_link: crate::faults::LinkFaults {
                dup_p: 0.5,
                ..Default::default()
            },
            ..Default::default()
        };
        let cfg = SimConfig {
            seed: 4,
            faults,
            ..SimConfig::default()
        };
        let r = Simulation::new(cfg, vec![Box::new(Blast) as _, Box::new(Blast) as _]).run();
        let dup = r.metrics.counter("msgs_duplicated");
        assert!(
            (25..75).contains(&dup),
            "≈50% of 100 should duplicate, got {dup}"
        );
        assert_eq!(r.metrics.counter("delivered"), 100 + dup);
        assert_eq!(r.deposet.messages().len() as u64, 100 + dup);
    }

    #[test]
    fn extra_delay_reorders_fixed_delay_channel() {
        struct Sender;
        #[derive(Clone, Debug)]
        struct Seq(u32);
        impl Payload for Seq {}
        impl Process<Seq> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Seq>) {
                if ctx.me() == ProcessId(0) {
                    for i in 0..20 {
                        ctx.send(ProcessId(1), Seq(i));
                    }
                }
                ctx.set_done();
            }
            fn on_message(&mut self, _: ProcessId, _: Seq, _: &mut Ctx<'_, Seq>) {}
        }
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Capture(Rc<RefCell<Vec<u32>>>);
        impl Process<Seq> for Capture {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Seq>) {
                ctx.set_done();
            }
            fn on_message(&mut self, _: ProcessId, m: Seq, _: &mut Ctx<'_, Seq>) {
                self.0.borrow_mut().push(m.0);
            }
        }
        let slot = Rc::new(RefCell::new(Vec::new()));
        let faults = crate::faults::FaultPlan {
            default_link: crate::faults::LinkFaults {
                extra_delay_max: 40,
                ..Default::default()
            },
            ..Default::default()
        };
        let cfg = SimConfig {
            seed: 6,
            delay: DelayModel::Fixed(7),
            faults,
            ..SimConfig::default()
        };
        let r = Simulation::new(
            cfg,
            vec![
                Box::new(Sender) as _,
                Box::new(Capture(Rc::clone(&slot))) as _,
            ],
        )
        .run();
        assert_eq!(r.stopped, StopReason::Quiescent);
        let got = slot.borrow().clone();
        assert_eq!(got.len(), 20, "extra delay never loses messages");
        assert!(
            got.windows(2).any(|w| w[0] > w[1]),
            "extra delay should reorder: {got:?}"
        );
    }

    #[test]
    fn partition_window_cuts_cross_side_traffic_only() {
        // P0 sends to P1 at t=0 (through, delay 10) and during the
        // partition window (cut); after the window traffic flows again.
        struct Script;
        #[derive(Clone, Debug)]
        struct B;
        impl Payload for B {}
        impl Process<B> for Script {
            fn on_start(&mut self, ctx: &mut Ctx<'_, B>) {
                if ctx.me() == ProcessId(0) {
                    ctx.send(ProcessId(1), B); // before window: delivered
                    ctx.set_timer(50); // inside window [40, 80)
                    ctx.set_timer(100); // after window
                }
                ctx.set_done();
            }
            fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, B>) {
                ctx.send(ProcessId(1), B);
            }
            fn on_message(&mut self, _: ProcessId, _: B, ctx: &mut Ctx<'_, B>) {
                ctx.count("delivered", 1);
            }
        }
        let faults = crate::faults::FaultPlan::none().with_partition(
            SimTime(40),
            SimTime(80),
            vec![ProcessId(0)],
        );
        let cfg = SimConfig {
            seed: 0,
            faults,
            ..SimConfig::default()
        };
        let r = Simulation::new(cfg, vec![Box::new(Script) as _, Box::new(Script) as _]).run();
        assert_eq!(
            r.metrics.counter("delivered"),
            2,
            "send inside the window is cut"
        );
        assert_eq!(r.metrics.counter("msgs_dropped"), 1);
    }

    #[test]
    fn crash_drops_deliveries_and_restart_rearms_via_hook() {
        // P1 crashes at t=20 and restarts at t=60. P0 sends one message
        // arriving during downtime (lost) and one after restart (delivered).
        struct Sender;
        #[derive(Clone, Debug)]
        struct B;
        impl Payload for B {}
        impl Process<B> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, B>) {
                ctx.set_timer(25); // arrives ~35: P1 down
                ctx.set_timer(70); // arrives ~80: P1 back up
                ctx.set_done();
            }
            fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, B>) {
                ctx.send(ProcessId(1), B);
            }
            fn on_message(&mut self, _: ProcessId, _: B, _: &mut Ctx<'_, B>) {}
        }
        struct Victim {
            restarted: bool,
        }
        impl Process<B> for Victim {
            fn on_start(&mut self, ctx: &mut Ctx<'_, B>) {
                // A pre-crash timer that must NOT fire after restart.
                ctx.set_timer(45);
                ctx.set_done();
            }
            fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, B>) {
                if self.restarted {
                    ctx.count("post_restart_timer", 1);
                } else {
                    ctx.count("stale_timer_fired", 1);
                }
            }
            fn on_message(&mut self, _: ProcessId, _: B, ctx: &mut Ctx<'_, B>) {
                ctx.count("delivered", 1);
            }
            fn on_restart(&mut self, ctx: &mut Ctx<'_, B>) {
                self.restarted = true;
                ctx.set_timer(5);
            }
        }
        let faults =
            crate::faults::FaultPlan::none().with_crash(ProcessId(1), SimTime(20), Some(40));
        let cfg = SimConfig {
            seed: 0,
            faults,
            ..SimConfig::default()
        };
        let r = Simulation::new(
            cfg,
            vec![
                Box::new(Sender) as _,
                Box::new(Victim { restarted: false }) as _,
            ],
        )
        .run();
        assert_eq!(r.metrics.counter("crashes"), 1);
        assert_eq!(r.metrics.counter("restarts"), 1);
        assert_eq!(
            r.metrics.counter("delivered"),
            1,
            "message during downtime is lost"
        );
        assert_eq!(r.metrics.counter("msgs_dropped"), 1);
        assert_eq!(
            r.metrics.counter("stale_timer_fired"),
            0,
            "pre-crash timer must stay dead"
        );
        assert_eq!(
            r.metrics.counter("post_restart_timer"),
            1,
            "on_restart re-armed a timer"
        );
        // Crash windows are visible in the trace via the reserved "down" var.
        let downs: Vec<i64> = r
            .deposet
            .states_of(ProcessId(1))
            .iter()
            .filter_map(|s| s.vars.get("down"))
            .collect();
        assert!(
            downs.contains(&1) && downs.ends_with(&[0]),
            "down=1 then down=0: {downs:?}"
        );
    }

    #[test]
    fn crash_at_delivery_time_orders_deterministically() {
        // Regression for the batch dispatcher: a crash scheduled at the
        // exact SimTime an in-flight delivery lands must dispatch first —
        // the crash plan is scheduled before any process runs, so its seq
        // is lower, and equal-time events dispatch in seq order. The
        // delivery then finds the receiver down and is dropped.
        struct Sender;
        #[derive(Clone, Debug)]
        struct B;
        impl Payload for B {}
        impl Process<B> for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, B>) {
                if ctx.me() == ProcessId(0) {
                    ctx.send(ProcessId(1), B); // Fixed(10) ⇒ lands exactly at t=10
                    ctx.set_done();
                }
                // P1 stays unfinished so its crash shows up as Down.
            }
            fn on_message(&mut self, _: ProcessId, _: B, ctx: &mut Ctx<'_, B>) {
                ctx.count("delivered", 1);
            }
        }
        let run = || {
            let faults =
                crate::faults::FaultPlan::none().with_crash(ProcessId(1), SimTime(10), None);
            let cfg = SimConfig {
                seed: 1,
                delay: DelayModel::Fixed(10),
                faults,
                ..SimConfig::default()
            };
            Simulation::new(cfg, vec![Box::new(Sender) as _, Box::new(Sender) as _]).run()
        };
        let a = run();
        assert_eq!(a.metrics.counter("delivered"), 0, "crash wins the tie");
        assert_eq!(a.metrics.counter("msgs_dropped"), 1);
        assert_eq!(a.outcomes()[1], ProcessOutcome::Down);
        // And deterministically so.
        let b = run();
        assert_eq!(
            serde_json::to_string(&a.metrics).unwrap(),
            serde_json::to_string(&b.metrics).unwrap()
        );
        assert_eq!(trace::to_json(&a.deposet), trace::to_json(&b.deposet));
    }

    #[test]
    fn zero_delay_sends_dispatch_within_the_same_timestep() {
        // A zero-delay chain scheduled mid-batch joins the live batch and
        // dispatches at the same simulated time, in causal (seq) order.
        struct Chain;
        #[derive(Clone, Debug)]
        struct Hop(u32);
        impl Payload for Hop {}
        impl Process<Hop> for Chain {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Hop>) {
                if ctx.me() == ProcessId(0) {
                    ctx.send(ProcessId(1), Hop(4));
                }
                ctx.set_done();
            }
            fn on_message(&mut self, from: ProcessId, m: Hop, ctx: &mut Ctx<'_, Hop>) {
                ctx.count("hops", 1);
                ctx.step(&[("at", ctx.now().0 as i64)]);
                if m.0 > 0 {
                    ctx.send(from, Hop(m.0 - 1));
                }
            }
        }
        let cfg = SimConfig {
            seed: 0,
            delay: DelayModel::Fixed(0),
            ..SimConfig::default()
        };
        let r = Simulation::new(cfg, vec![Box::new(Chain) as _, Box::new(Chain) as _]).run();
        assert_eq!(r.stopped, StopReason::Quiescent);
        assert_eq!(r.metrics.counter("hops"), 5);
        assert_eq!(r.end_time, SimTime(0), "whole chain ran inside t=0");
        assert_eq!(r.core.timesteps, 1);
    }

    #[test]
    fn same_seed_and_plan_give_identical_faulty_runs() {
        let run = |seed: u64| {
            let faults = crate::faults::FaultPlan {
                default_link: crate::faults::LinkFaults {
                    drop_p: 0.15,
                    dup_p: 0.1,
                    extra_delay_max: 20,
                },
                ..Default::default()
            }
            .with_crash(ProcessId(1), SimTime(40), Some(30));
            let cfg = SimConfig {
                seed,
                delay: DelayModel::Uniform { min: 5, max: 15 },
                faults,
                max_time: SimTime(500),
                ..SimConfig::default()
            };
            Simulation::new(
                cfg,
                vec![
                    Box::new(Pinger {
                        rounds: 30,
                        sent_at: SimTime::ZERO,
                    }) as Box<dyn Process<Ping>>,
                    Box::new(Ponger),
                ],
            )
            .run()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(trace::to_json(&a.deposet), trace::to_json(&b.deposet));
        assert_eq!(
            serde_json::to_string(&a.metrics).unwrap(),
            serde_json::to_string(&b.metrics).unwrap()
        );
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn max_events_limit_stops_runaway_protocols() {
        // Two processes bouncing a message forever.
        struct Bouncer;
        #[derive(Clone, Debug)]
        struct B;
        impl Payload for B {}
        impl Process<B> for Bouncer {
            fn on_start(&mut self, ctx: &mut Ctx<'_, B>) {
                if ctx.me() == ProcessId(0) {
                    ctx.send(ProcessId(1), B);
                }
            }
            fn on_message(&mut self, from: ProcessId, _m: B, ctx: &mut Ctx<'_, B>) {
                ctx.send(from, B);
            }
        }
        let cfg = SimConfig {
            max_events: 100,
            ..SimConfig::default()
        };
        let r = Simulation::new(cfg, vec![Box::new(Bouncer) as _, Box::new(Bouncer) as _]).run();
        assert_eq!(r.stopped, StopReason::MaxEvents);
        // In-flight message at cutoff is tolerated (allow_in_flight).
        assert!(r.deposet.total_states() > 0);
    }

    #[test]
    fn core_stats_track_live_state_not_total_traffic() {
        // One message in flight at a time: the arena must stay at one slot
        // no matter how many messages the run sends in total.
        let r = ping_sim(13, 50);
        assert_eq!(r.metrics.counter("msgs_total"), 100);
        assert_eq!(r.core.events_dispatched, 100);
        assert_eq!(r.core.arena_high_water, 1, "ping-pong has 1 msg in flight");
        assert_eq!(r.core.arena_slots, 1, "slab reuses the freed slot");
        assert_eq!(r.core.arena_live_at_end, 0, "quiescent runs drain fully");
        assert_eq!(r.core.inbox_high_water, 1);
        assert_eq!(r.core.inbox_overflows, 0);
        assert!(r.core.timesteps > 0 && r.core.timesteps <= 100);
    }

    #[test]
    fn inbox_soft_bound_counts_overflow_without_dropping() {
        // 200 same-tick deliveries against a capacity-8 inbox: everything
        // still arrives (reliable channels), but the pressure is counted.
        struct Blast;
        #[derive(Clone, Debug)]
        struct B;
        impl Payload for B {}
        impl Process<B> for Blast {
            fn on_start(&mut self, ctx: &mut Ctx<'_, B>) {
                if ctx.me() == ProcessId(0) {
                    for _ in 0..200 {
                        ctx.send(ProcessId(1), B);
                    }
                }
                ctx.set_done();
            }
            fn on_message(&mut self, _: ProcessId, _: B, ctx: &mut Ctx<'_, B>) {
                ctx.count("delivered", 1);
            }
        }
        let cfg = SimConfig {
            seed: 2,
            delay: DelayModel::Fixed(5),
            inbox_capacity: 8,
            ..SimConfig::default()
        };
        let r = Simulation::new(cfg, vec![Box::new(Blast) as _, Box::new(Blast) as _]).run();
        assert_eq!(
            r.metrics.counter("delivered"),
            200,
            "soft bound never drops"
        );
        assert_eq!(r.core.inbox_high_water, 200);
        assert_eq!(r.core.inbox_overflows, 192);
    }
}
