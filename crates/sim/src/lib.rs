//! Deterministic discrete-event simulation of asynchronous message-passing
//! systems, with built-in deposet tracing.
//!
//! This crate is the runtime substrate for the paper's *on-line* scenarios:
//! the on-line predicate-control strategy (Figure 3), the k-mutual-exclusion
//! evaluation (Section 6), and controlled replay. See [`sim`] for the
//! programming model ([`Process`] + [`Ctx`]) and DESIGN.md for why a
//! simulator stands in for the authors' runtime.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod faults;
pub mod metrics;
pub mod scenarios;
pub mod sim;
pub mod time;
pub mod wheel;

pub use faults::{Crash, CrashPhase, FaultPlan, LinkFaults, Partition};
pub use metrics::{LiveMetrics, Metrics, Summary, FAULT_COUNTERS};
pub use sim::{
    CoreStats, Ctx, DelayModel, Payload, Process, ProcessOutcome, SimConfig, SimResult, Simulation,
    StopReason, TimerId,
};
pub use time::SimTime;

// Re-export ids for downstream convenience.
pub use pctl_deposet::ProcessId;

// Re-export the telemetry surface so simulation users don't need a direct
// pctl-obs dependency to attach a recorder.
pub use pctl_obs::{Event, EventKind, JsonlRecorder, NullRecorder, Recorder, RingRecorder};
