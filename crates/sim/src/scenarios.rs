//! Canned high-volume workloads for benchmarking and scale testing.
//!
//! The mutex runners in `pctl-mutex` exercise the simulator with realistic
//! protocol logic; the scenarios here do the opposite — minimal handler
//! work, maximal event counts — so benchmarks measure the *engine* (wheel,
//! arena, mailbox routing), not the workload.

use crate::sim::{Ctx, Payload, Process, SimConfig, Simulation};
use pctl_deposet::ProcessId;

/// One hop of a [`ring_flood`] message: remaining hop count.
#[derive(Clone, Debug)]
pub struct RingHop(pub u32);

impl Payload for RingHop {
    fn tag(&self) -> &'static str {
        "hop"
    }
}

struct RingNode {
    next: ProcessId,
    fanout: u32,
    hops: u32,
}

impl Process<RingHop> for RingNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, RingHop>) {
        for _ in 0..self.fanout {
            ctx.send(self.next, RingHop(self.hops - 1));
        }
        ctx.set_done();
    }
    fn on_message(&mut self, _from: ProcessId, msg: RingHop, ctx: &mut Ctx<'_, RingHop>) {
        if msg.0 > 0 {
            ctx.send(self.next, RingHop(msg.0 - 1));
        }
    }
}

/// A ring of `processes` nodes, each launching `fanout` messages that chase
/// around the ring for `hops` hops: exactly `processes × fanout × hops`
/// deliveries, with `processes × fanout` messages in flight at any instant
/// (so the arena high-water gauge has a known exact bound).
///
/// Handlers do no work beyond forwarding — the scenario measures raw engine
/// throughput. Deliveries dominate the event count; there are no timers and
/// no metric samples (counters only via the engine's own accounting), so
/// the trace and metrics stay compact even at 10⁷ events.
///
/// Panics unless `processes > 0`, `fanout > 0`, `hops > 0`.
pub fn ring_flood(
    processes: u32,
    fanout: u32,
    hops: u32,
    config: SimConfig,
) -> Simulation<RingHop> {
    assert!(
        processes > 0 && fanout > 0 && hops > 0,
        "ring_flood needs at least one process, one message, one hop"
    );
    let procs = (0..processes)
        .map(|i| {
            Box::new(RingNode {
                next: ProcessId((i + 1) % processes),
                fanout,
                hops,
            }) as Box<dyn Process<RingHop>>
        })
        .collect();
    Simulation::new(config, procs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{DelayModel, StopReason};
    use crate::time::SimTime;

    #[test]
    fn ring_flood_event_count_and_live_state_are_exact() {
        let (n, fanout, hops) = (8u32, 4, 25);
        let cfg = SimConfig {
            seed: 1,
            delay: DelayModel::Fixed(3),
            max_events: usize::MAX,
            max_time: SimTime(u64::MAX),
            ..SimConfig::default()
        };
        let r = ring_flood(n, fanout, hops, cfg).run();
        assert_eq!(r.stopped, StopReason::Quiescent);
        assert!(!r.deadlocked());
        let expected = u64::from(n) * u64::from(fanout) * u64::from(hops);
        assert_eq!(r.metrics.counter("msgs_total"), expected);
        assert_eq!(r.core.events_dispatched, expected);
        // Constant in-flight population: every delivery either forwards one
        // message or retires one chain at the very end.
        assert_eq!(r.core.arena_high_water, u64::from(n) * u64::from(fanout));
        assert_eq!(r.core.arena_live_at_end, 0);
    }

    #[test]
    fn ring_flood_is_deterministic() {
        let cfg = || SimConfig {
            seed: 7,
            delay: DelayModel::Uniform { min: 1, max: 9 },
            max_events: usize::MAX,
            ..SimConfig::default()
        };
        let a = ring_flood(4, 2, 50, cfg()).run();
        let b = ring_flood(4, 2, 50, cfg()).run();
        assert_eq!(
            serde_json::to_string(&a.metrics).unwrap(),
            serde_json::to_string(&b.metrics).unwrap()
        );
        assert_eq!(a.end_time, b.end_time);
    }
}
