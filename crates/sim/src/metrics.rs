//! Simulation metrics: named counters and latency samples.
//!
//! The benchmark harness reads these to reproduce the paper's analytic
//! claims (control messages per critical-section entry, response-time
//! bounds `[2T, 2T + E_max]`, …).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulated metrics for one simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    samples: BTreeMap<String, Vec<u64>>,
}

/// Summary statistics over one sample series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Metrics {
    /// Increment counter `name` by `by`.
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record one latency/size sample under `name`.
    pub fn record(&mut self, name: &str, value: u64) {
        self.samples.entry(name.to_owned()).or_default().push(value);
    }

    /// Raw samples for `name`.
    pub fn samples(&self, name: &str) -> &[u64] {
        self.samples.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Summary statistics for `name`, or `None` when no samples exist.
    pub fn summary(&self, name: &str) -> Option<Summary> {
        let s = self.samples.get(name)?;
        if s.is_empty() {
            return None;
        }
        let (mut min, mut max, mut sum) = (u64::MAX, 0u64, 0u128);
        for &v in s {
            min = min.min(v);
            max = max.max(v);
            sum += u128::from(v);
        }
        Some(Summary {
            count: s.len(),
            min,
            max,
            mean: sum as f64 / s.len() as f64,
        })
    }

    /// All counter names (sorted).
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All sample series names (sorted).
    pub fn sample_names(&self) -> impl Iterator<Item = &str> {
        self.samples.keys().map(String::as_str)
    }

    /// Merge another run's metrics into this one (for aggregation across
    /// seeds).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.samples {
            self.samples
                .entry(k.clone())
                .or_default()
                .extend_from_slice(v);
        }
    }

    /// `(name, value)` pairs of the standard fault counters
    /// ([`FAULT_COUNTERS`]), including zero entries, in a fixed order —
    /// what summary output should print for a faulty run.
    pub fn fault_counters(&self) -> Vec<(&'static str, u64)> {
        FAULT_COUNTERS
            .iter()
            .map(|&n| (n, self.counter(n)))
            .collect()
    }

    /// One-line rendering of [`fault_counters`](Self::fault_counters), e.g.
    /// `msgs_dropped=3 msgs_duplicated=0 retransmissions=2 crashes=1
    /// restarts=1 rejoins=1 regenerations=0 aborted_cs=0`.
    pub fn fault_line(&self) -> String {
        self.fault_counters()
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// The counters every fault-injected run reports: what the simulator's
/// fault layer charges (`msgs_dropped`, `msgs_duplicated`, `crashes`,
/// `restarts`) plus what the hardened protocol layer charges
/// (`retransmissions`, `rejoins`, `regenerations`, `aborted_cs`).
pub const FAULT_COUNTERS: &[&str] = &[
    "msgs_dropped",
    "msgs_duplicated",
    "retransmissions",
    "crashes",
    "restarts",
    "rejoins",
    "regenerations",
    "aborted_cs",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        assert_eq!(m.counter("msgs"), 0);
        m.add("msgs", 2);
        m.add("msgs", 3);
        assert_eq!(m.counter("msgs"), 5);
    }

    #[test]
    fn summary_statistics() {
        let mut m = Metrics::default();
        for v in [10, 20, 30] {
            m.record("lat", v);
        }
        let s = m.summary("lat").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert!((s.mean - 20.0).abs() < 1e-9);
        assert!(m.summary("nothing").is_none());
    }

    #[test]
    fn fault_counters_render_in_fixed_order_with_zeros() {
        let mut m = Metrics::default();
        m.add("msgs_dropped", 3);
        m.add("crashes", 1);
        let fc = m.fault_counters();
        assert_eq!(fc.len(), FAULT_COUNTERS.len());
        assert_eq!(fc[0], ("msgs_dropped", 3));
        assert!(fc.contains(&("crashes", 1)));
        assert!(fc.contains(&("retransmissions", 0)));
        let line = m.fault_line();
        assert!(line.starts_with("msgs_dropped=3 msgs_duplicated=0"));
        assert!(line.contains("crashes=1"));
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = Metrics::default();
        a.add("c", 1);
        a.record("x", 5);
        let mut b = Metrics::default();
        b.add("c", 2);
        b.record("x", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.samples("x"), &[5, 7]);
        assert_eq!(a.counter_names().collect::<Vec<_>>(), vec!["c"]);
        assert_eq!(a.sample_names().collect::<Vec<_>>(), vec!["x"]);
    }
}
