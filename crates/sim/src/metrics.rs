//! Simulation metrics: a registry of named counters (plain and labeled),
//! gauges, and sample series with percentile summaries.
//!
//! The benchmark harness reads these to reproduce the paper's analytic
//! claims (control messages per critical-section entry, response-time
//! bounds `[2T, 2T + E_max]`, …).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulated metrics for one simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    samples: BTreeMap<String, Vec<u64>>,
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    gauges: BTreeMap<String, i64>,
}

/// Summary statistics over one sample series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank 50th percentile).
    pub p50: u64,
    /// Nearest-rank 95th percentile.
    pub p95: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
}

/// Nearest-rank percentile (`1 ≤ p ≤ 100`) over a sorted, non-empty slice:
/// the smallest sample with at least `p`% of the distribution at or below
/// it.
fn nearest_rank(sorted: &[u64], p: u32) -> u64 {
    // Widened: `len * p` overflows u64 for series past ~2^57 samples.
    let rank = (sorted.len() as u128 * u128::from(p)).div_ceil(100) as usize;
    sorted[rank - 1]
}

impl Metrics {
    /// Increment counter `name` by `by`. Saturates at `u64::MAX` instead of
    /// wrapping (release builds don't check `+=`, and a wrapped counter is
    /// silently, catastrophically wrong in a report).
    pub fn add(&mut self, name: &str, by: u64) {
        let c = self.counters.entry(name.to_owned()).or_insert(0);
        *c = c.saturating_add(by);
    }

    /// Increment a labeled counter: the registry key is `name{label}`, so
    /// e.g. `add_labeled("retransmissions", "p2", 1)` tracks
    /// `retransmissions{p2}` separately from the plain total. Saturating,
    /// like [`Metrics::add`].
    pub fn add_labeled(&mut self, name: &str, label: &str, by: u64) {
        let c = self
            .counters
            .entry(format!("{name}{{{label}}}"))
            .or_insert(0);
        *c = c.saturating_add(by);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a labeled counter (see [`Metrics::add_labeled`]).
    pub fn counter_labeled(&self, name: &str, label: &str) -> u64 {
        self.counter(&format!("{name}{{{label}}}"))
    }

    /// Set gauge `name` to `value` (last write wins; unlike counters, a
    /// gauge tracks a level — queue depth, processes blocked, tokens held).
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current value of gauge `name`, or `None` if never set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Record one latency/size sample under `name`.
    pub fn record(&mut self, name: &str, value: u64) {
        self.samples.entry(name.to_owned()).or_default().push(value);
    }

    /// Raw samples for `name`.
    pub fn samples(&self, name: &str) -> &[u64] {
        self.samples.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Summary statistics for `name`, or `None` when no samples exist.
    pub fn summary(&self, name: &str) -> Option<Summary> {
        let s = self.samples.get(name)?;
        if s.is_empty() {
            return None;
        }
        let mut sorted = s.clone();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
        Some(Summary {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().unwrap(),
            mean: sum as f64 / sorted.len() as f64,
            p50: nearest_rank(&sorted, 50),
            p95: nearest_rank(&sorted, 95),
            p99: nearest_rank(&sorted, 99),
        })
    }

    /// All counter names (sorted).
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All sample series names (sorted).
    pub fn sample_names(&self) -> impl Iterator<Item = &str> {
        self.samples.keys().map(String::as_str)
    }

    /// All gauge names (sorted).
    pub fn gauge_names(&self) -> impl Iterator<Item = &str> {
        self.gauges.keys().map(String::as_str)
    }

    /// `(name, summary)` for every sample series, in name order.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, Summary)> {
        self.samples
            .keys()
            .filter_map(|k| Some((k.as_str(), self.summary(k)?)))
    }

    /// Merge another run's metrics into this one (for aggregation across
    /// seeds). Counters add, samples concatenate, gauges take the other
    /// run's final level.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            let c = self.counters.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, v) in &other.samples {
            self.samples
                .entry(k.clone())
                .or_default()
                .extend_from_slice(v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
    }

    /// `(name, value)` pairs of the standard fault counters
    /// ([`FAULT_COUNTERS`]), including zero entries, in a fixed order —
    /// what summary output should print for a faulty run.
    pub fn fault_counters(&self) -> Vec<(&'static str, u64)> {
        FAULT_COUNTERS
            .iter()
            .map(|&n| (n, self.counter(n)))
            .collect()
    }

    /// One-line rendering of [`fault_counters`](Self::fault_counters), e.g.
    /// `msgs_dropped=3 msgs_duplicated=0 retransmissions=2 crashes=1
    /// restarts=1 rejoins=1 regenerations=0 aborted_cs=0`.
    pub fn fault_line(&self) -> String {
        self.fault_counters()
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Render the registry as Prometheus text exposition (format 0.0.4).
    ///
    /// Plain counters become `{prefix}{name}_total`; labeled counters
    /// (registry keys of the form `name{label}`, see
    /// [`Metrics::add_labeled`]) become one family with a
    /// `label="..."` dimension; gauges become `{prefix}{name}` gauges;
    /// sample series become summaries with 0.5/0.95/0.99 quantiles plus
    /// `_sum`/`_count`.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut exp = pctl_obs::prom::Exposition::new();
        for (key, &v) in &self.counters {
            let (name, label) = match key.split_once('{') {
                Some((name, rest)) => (name, rest.strip_suffix('}')),
                None => (key.as_str(), None),
            };
            let family = format!("{prefix}{name}_total");
            match label {
                Some(l) => exp.counter(&family, "Simulation counter", &[("label", l)], v as f64),
                None => exp.counter(&family, "Simulation counter", &[], v as f64),
            }
        }
        for (name, &v) in &self.gauges {
            exp.gauge(
                &format!("{prefix}{name}"),
                "Simulation gauge",
                &[],
                v as f64,
            );
        }
        for (name, s) in &self.samples {
            let Some(sm) = self.summary(name) else {
                continue;
            };
            let sum: u128 = s.iter().map(|&v| u128::from(v)).sum();
            exp.summary(
                &format!("{prefix}{name}"),
                "Simulation sample series",
                &[],
                &[
                    (0.5, sm.p50 as f64),
                    (0.95, sm.p95 as f64),
                    (0.99, sm.p99 as f64),
                ],
                sum as f64,
                sm.count as u64,
            );
        }
        exp.render()
    }
}

/// A shared cell holding the latest Prometheus rendering of a running
/// simulation's metrics.
///
/// The simulation thread periodically re-renders into the cell (see
/// [`crate::Simulation::publish_live`]); a `/metrics` endpoint (e.g.
/// [`pctl_obs::prom::MetricsServer`]) reads it on demand. Publishing is
/// strictly observational — it only reads the registry and never touches
/// simulation state or RNG streams.
#[derive(Clone, Default)]
pub struct LiveMetrics {
    cell: std::sync::Arc<std::sync::Mutex<String>>,
}

impl LiveMetrics {
    /// A new, empty cell.
    pub fn new() -> LiveMetrics {
        LiveMetrics::default()
    }

    /// Replace the published exposition text.
    pub fn publish(&self, text: String) {
        *self.cell.lock().unwrap() = text;
    }

    /// The most recently published exposition text (empty before the first
    /// publish).
    pub fn read(&self) -> String {
        self.cell.lock().unwrap().clone()
    }

    /// A render closure suitable for
    /// [`pctl_obs::prom::MetricsServer::spawn`].
    pub fn renderer(&self) -> std::sync::Arc<dyn Fn() -> String + Send + Sync> {
        let cell = self.clone();
        std::sync::Arc::new(move || cell.read())
    }
}

impl std::fmt::Debug for LiveMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LiveMetrics({} bytes)", self.cell.lock().unwrap().len())
    }
}

/// The counters every fault-injected run reports: what the simulator's
/// fault layer charges (`msgs_dropped`, `msgs_duplicated`, `crashes`,
/// `restarts`) plus what the hardened protocol layer charges
/// (`retransmissions`, `rejoins`, `regenerations`, `aborted_cs`).
pub const FAULT_COUNTERS: &[&str] = &[
    "msgs_dropped",
    "msgs_duplicated",
    "retransmissions",
    "crashes",
    "restarts",
    "rejoins",
    "regenerations",
    "aborted_cs",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        assert_eq!(m.counter("msgs"), 0);
        m.add("msgs", 2);
        m.add("msgs", 3);
        assert_eq!(m.counter("msgs"), 5);
    }

    #[test]
    fn summary_statistics() {
        let mut m = Metrics::default();
        for v in [10, 20, 30] {
            m.record("lat", v);
        }
        let s = m.summary("lat").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert!((s.mean - 20.0).abs() < 1e-9);
        assert_eq!(s.p50, 20);
        assert_eq!(s.p95, 30);
        assert_eq!(s.p99, 30);
        assert!(m.summary("nothing").is_none());
    }

    #[test]
    fn percentiles_follow_nearest_rank() {
        let mut m = Metrics::default();
        for v in 1..=100 {
            m.record("lat", v);
        }
        let s = m.summary("lat").unwrap();
        assert_eq!((s.p50, s.p95, s.p99), (50, 95, 99));
        // Single sample: every percentile is that sample.
        let mut one = Metrics::default();
        one.record("x", 7);
        let s = one.summary("x").unwrap();
        assert_eq!((s.p50, s.p95, s.p99), (7, 7, 7));
    }

    #[test]
    fn gauges_hold_levels_and_labeled_counters_split() {
        let mut m = Metrics::default();
        assert_eq!(m.gauge("depth"), None);
        m.set_gauge("depth", 3);
        m.set_gauge("depth", 1);
        assert_eq!(m.gauge("depth"), Some(1));
        m.add_labeled("retransmissions", "p0", 2);
        m.add_labeled("retransmissions", "p1", 1);
        assert_eq!(m.counter_labeled("retransmissions", "p0"), 2);
        assert_eq!(m.counter_labeled("retransmissions", "p1"), 1);
        assert_eq!(m.counter("retransmissions"), 0, "labels are separate keys");
        assert_eq!(m.gauge_names().collect::<Vec<_>>(), vec!["depth"]);

        let mut other = Metrics::default();
        other.set_gauge("depth", 9);
        m.merge(&other);
        assert_eq!(m.gauge("depth"), Some(9), "merge takes the later level");
    }

    #[test]
    fn fault_counters_render_in_fixed_order_with_zeros() {
        let mut m = Metrics::default();
        m.add("msgs_dropped", 3);
        m.add("crashes", 1);
        let fc = m.fault_counters();
        assert_eq!(fc.len(), FAULT_COUNTERS.len());
        assert_eq!(fc[0], ("msgs_dropped", 3));
        assert!(fc.contains(&("crashes", 1)));
        assert!(fc.contains(&("retransmissions", 0)));
        let line = m.fault_line();
        assert!(line.starts_with("msgs_dropped=3 msgs_duplicated=0"));
        assert!(line.contains("crashes=1"));
    }

    #[test]
    fn prometheus_exposition_covers_all_registry_kinds() {
        let mut m = Metrics::default();
        m.add("msgs", 5);
        m.add_labeled("retransmissions", "p2", 3);
        m.set_gauge("queue_depth", 4);
        for v in [10, 20, 30] {
            m.record("latency_us", v);
        }
        let text = m.to_prometheus("pctl_sim_");
        assert!(
            text.contains("# TYPE pctl_sim_msgs_total counter"),
            "{text}"
        );
        assert!(text.contains("pctl_sim_msgs_total 5"), "{text}");
        assert!(
            text.contains("pctl_sim_retransmissions_total{label=\"p2\"} 3"),
            "{text}"
        );
        assert!(text.contains("# TYPE pctl_sim_queue_depth gauge"), "{text}");
        assert!(text.contains("pctl_sim_queue_depth 4"), "{text}");
        assert!(
            text.contains("# TYPE pctl_sim_latency_us summary"),
            "{text}"
        );
        assert!(
            text.contains("pctl_sim_latency_us{quantile=\"0.5\"} 20"),
            "{text}"
        );
        assert!(text.contains("pctl_sim_latency_us_sum 60"), "{text}");
        assert!(text.contains("pctl_sim_latency_us_count 3"), "{text}");
        let n = pctl_obs::prom::validate_exposition(&text).expect("valid exposition");
        // 1 plain counter + 1 labeled counter + 1 gauge + 5 summary samples.
        assert_eq!(n, 8, "{text}");
    }

    #[test]
    fn summary_is_exact_near_u64_max() {
        // Mirrors the PR 5 `Percentiles::of` regression: accumulating in
        // u64 (or f64) would overflow / lose the sum for samples near
        // u64::MAX; the u128 accumulator must keep mean and percentiles
        // exact.
        let mut m = Metrics::default();
        let big = u64::MAX - 4;
        for v in [big, big + 1, big + 2, big + 3, big + 4] {
            m.record("huge", v);
        }
        let s = m.summary("huge").unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, big);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50, big + 2);
        assert_eq!((s.p95, s.p99), (u64::MAX, u64::MAX));
        // Exact u128 mean is big+2; f64 can't hold every u64 exactly, so
        // compare in ULP-scale terms.
        let want = (big + 2) as f64;
        assert!(
            (s.mean - want).abs() <= want * 1e-9,
            "mean {} drifted from {want}",
            s.mean
        );
        // And the Prometheus sum survives the same widening.
        let text = m.to_prometheus("x_");
        assert!(text.contains("x_huge_count 5"), "{text}");
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut m = Metrics::default();
        m.add("c", u64::MAX - 1);
        m.add("c", 5);
        assert_eq!(m.counter("c"), u64::MAX, "add saturates");
        m.add_labeled("c", "p0", u64::MAX);
        m.add_labeled("c", "p0", 1);
        assert_eq!(m.counter_labeled("c", "p0"), u64::MAX, "labeled saturates");
        let mut other = Metrics::default();
        other.add("c", 7);
        m.merge(&other);
        assert_eq!(m.counter("c"), u64::MAX, "merge saturates");
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = Metrics::default();
        a.add("c", 1);
        a.record("x", 5);
        let mut b = Metrics::default();
        b.add("c", 2);
        b.record("x", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.samples("x"), &[5, 7]);
        assert_eq!(a.counter_names().collect::<Vec<_>>(), vec!["c"]);
        assert_eq!(a.sample_names().collect::<Vec<_>>(), vec!["x"]);
    }
}
