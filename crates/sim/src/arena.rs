//! Slab arena for in-flight message payloads.
//!
//! The actor core never boxes a message per send: payloads (and their
//! trace token / telemetry baggage) live in a generation-checked slab, and
//! the scheduler only moves a `Copy` [`MsgHandle`] through the timing wheel
//! and the per-process inboxes. Slots are recycled through a free list, so
//! the arena's footprint is proportional to the peak number of in-flight
//! messages — not to the total number sent. [`PayloadArena::high_water`]
//! exposes that peak; `bench_suite`'s `sim_core` section and the scale test
//! gate on it.
//!
//! Generations catch use-after-take at the source: a handle minted for one
//! occupancy of a slot cannot read a later occupancy (the slot's generation
//! is bumped on every free). Inside the simulator every handle is consumed
//! exactly once, so a generation mismatch is an engine bug, not a user
//! error — it panics rather than returning an `Option`.

/// Hard cap on arena slots so handles index with a checked `u32` (mirrors
/// the `MAX_ROWS` cast guards in `pctl_causality::arena`).
pub const MAX_SLOTS: usize = u32::MAX as usize - 1;

/// A generation-checked reference to an arena slot. `Copy`, 8 bytes —
/// cheap enough to cascade through the timing wheel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgHandle {
    idx: u32,
    gen: u32,
}

struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// Slab allocator with a free list and generation-checked handles.
pub struct PayloadArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
}

impl<T> Default for PayloadArena<T> {
    fn default() -> Self {
        PayloadArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
        }
    }
}

impl<T> PayloadArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        PayloadArena::default()
    }

    /// Store `val`, returning its handle. Reuses a freed slot when one is
    /// available; otherwise grows the slab (checked against [`MAX_SLOTS`]).
    pub fn alloc(&mut self, val: T) -> MsgHandle {
        let h = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.val.is_none(), "free list holds occupied slot");
                slot.val = Some(val);
                MsgHandle { idx, gen: slot.gen }
            }
            None => {
                assert!(
                    self.slots.len() < MAX_SLOTS,
                    "payload arena exceeds {MAX_SLOTS} slots"
                );
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    val: Some(val),
                });
                MsgHandle { idx, gen: 0 }
            }
        };
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        h
    }

    /// Remove and return the payload behind `h`, freeing its slot.
    ///
    /// Panics on a stale handle (slot generation advanced) — inside the
    /// simulator that means a handle was consumed twice, which would break
    /// the one-delivery-per-send trace invariant.
    pub fn take(&mut self, h: MsgHandle) -> T {
        let slot = &mut self.slots[h.idx as usize];
        assert_eq!(
            slot.gen, h.gen,
            "stale payload handle: slot {} is at generation {}, handle at {}",
            h.idx, slot.gen, h.gen
        );
        let val = slot
            .val
            .take()
            .expect("payload handle consumed twice within one generation");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.idx);
        self.live -= 1;
        val
    }

    /// Payloads currently stored.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak simultaneous payloads over the arena's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Slots ever allocated (the slab's actual footprint).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_take_roundtrip_and_slot_reuse() {
        let mut a = PayloadArena::new();
        let h1 = a.alloc("one");
        let h2 = a.alloc("two");
        assert_eq!(a.live(), 2);
        assert_eq!(a.take(h1), "one");
        assert_eq!(a.live(), 1);
        // The freed slot is reused under a new generation.
        let h3 = a.alloc("three");
        assert_eq!(a.capacity(), 2, "slot reused, slab did not grow");
        assert_eq!(a.take(h2), "two");
        assert_eq!(a.take(h3), "three");
        assert_eq!(a.live(), 0);
        assert_eq!(a.high_water(), 2);
    }

    #[test]
    #[should_panic(expected = "stale payload handle")]
    fn stale_handle_panics() {
        let mut a = PayloadArena::new();
        let h = a.alloc(1u32);
        a.take(h);
        let _h2 = a.alloc(2u32); // same slot, bumped generation
        a.take(h); // stale
    }

    #[test]
    fn high_water_tracks_peak_not_total() {
        let mut a = PayloadArena::new();
        for i in 0..1000u32 {
            let h = a.alloc(i);
            a.take(h);
        }
        assert_eq!(a.high_water(), 1, "sequential traffic peaks at one slot");
        assert_eq!(a.capacity(), 1);
    }
}
