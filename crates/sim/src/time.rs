//! Simulated time.
//!
//! Discrete ticks (interpreted as microseconds in the benchmark harness,
//! though nothing depends on the unit). Simulated time only advances when
//! the event queue advances, so runs are fully deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_add(rhs).expect("simulated time overflowed"))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.checked_add(rhs).expect("simulated time overflowed");
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.checked_sub(rhs.0).expect("time moved backwards")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + 5;
        assert_eq!(t, SimTime(5));
        let mut u = t;
        u += 3;
        assert_eq!(u - t, 3);
        assert_eq!(t.since(u), 0, "saturating");
        assert_eq!(u.since(t), 3);
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn subtraction_underflow_panics() {
        let _ = SimTime(1) - SimTime(2);
    }
}
