//! Hierarchical timing wheel: the actor core's scheduler.
//!
//! The simulator exploits the paper's model structure — the end of a
//! timestep is a *controlled deadlock* (nothing at time `t` can enable
//! anything else at time `t` except by scheduling it explicitly) — so the
//! scheduler's unit of work is a whole timestep: [`TimingWheel::pop_batch`]
//! returns **every** entry at the earliest occupied time, sorted by
//! sequence number, and advances the wheel past it.
//!
//! Layout: [`LEVELS`] levels of [`SLOTS`] slots each; level `l` buckets
//! times by bits `[6l, 6(l+1))` relative to the wheel's `base` (the current
//! time). An entry lives at the level of its highest bit differing from
//! `base`; entries beyond the wheel horizon (`base ^ time ≥ 2^30`) wait in
//! a min-heap and are drained into the wheel as `base` advances. Per-level
//! occupancy bitmaps make "find the earliest slot" a couple of
//! `trailing_zeros` calls, so an empty stretch of simulated time is skipped
//! in O(levels), not O(ticks).
//!
//! ## Invariants (the determinism argument leans on these)
//!
//! 1. Every stored entry has `time ≥ base`, and `base` only advances.
//! 2. An entry at level `l` shares all bits above `6(l+1)` with `base`.
//!    This holds at insert time by construction and is preserved as `base`
//!    advances, because `base` never passes the earliest entry (the prefix
//!    of any value in `[insert_base, time]` is sandwiched).
//! 3. Therefore at every level all occupied slots are `≥` the slot `base`
//!    hashes to, lower levels hold strictly earlier times than higher
//!    levels (after base-slot cascading), and a bottom-up scan finds the
//!    global minimum.
//!
//! Cascading can land same-time entries in a slot *after* later-sequence
//! entries that were inserted directly, so `pop_batch` sorts each batch by
//! `seq` before returning it — the batch order, not arrival order, is the
//! dispatch order.

use std::collections::BinaryHeap;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; times further than `2^(6·LEVELS)` ticks from
/// `base` overflow into the heap.
const LEVELS: usize = 5;
/// Bits of time the wheel proper can address relative to `base`.
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// One scheduled entry: a `(time, seq)` key plus a small `Copy` item (the
/// simulator stores arena handles, never payloads, so the wheel is cheap to
/// cascade).
#[derive(Clone, Copy, Debug)]
pub struct WheelEntry<T> {
    /// Absolute due time in ticks.
    pub time: u64,
    /// Global scheduling sequence number; ties on `time` dispatch in `seq`
    /// order.
    pub seq: u64,
    /// Carried item.
    pub item: T,
}

/// Overflow-heap node: ordered by `(time, seq)` only (reversed, so the
/// std max-heap behaves as a min-heap), never by the item — `T` needs no
/// `Ord`.
struct OverflowEntry<T> {
    time: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for OverflowEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<T> Eq for OverflowEntry<T> {}
impl<T> PartialOrd for OverflowEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OverflowEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A hierarchical timing wheel over `Copy` items with an overflow heap for
/// beyond-horizon entries. See the module docs for the invariants.
pub struct TimingWheel<T> {
    base: u64,
    /// `slots[level][slot]` — entry buckets. Bucket vecs are recycled via
    /// `mem::take`, so steady-state operation does not allocate.
    slots: Vec<Vec<Vec<WheelEntry<T>>>>,
    /// Per-level occupancy bitmap (bit `s` set ⇔ `slots[level][s]`
    /// non-empty).
    occupied: [u64; LEVELS],
    /// Beyond-horizon entries, min-ordered by `(time, seq)`.
    overflow: BinaryHeap<OverflowEntry<T>>,
    /// Entries currently in the wheel proper (excluding overflow).
    in_wheel: usize,
    /// Peak of `len()` — the "pending events" component of live state.
    high_water: usize,
    /// Number of entries moved during cascades (stat only).
    cascades: u64,
}

impl<T: Copy> TimingWheel<T> {
    /// An empty wheel based at time `start`.
    pub fn new(start: u64) -> Self {
        TimingWheel {
            base: start,
            slots: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            in_wheel: 0,
            high_water: 0,
            cascades: 0,
        }
    }

    /// Current base time (the earliest time a new entry may carry).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total pending entries (wheel + overflow).
    pub fn len(&self) -> usize {
        self.in_wheel + self.overflow.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Peak pending-entry count over the wheel's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Entries moved by cascading so far.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Level an entry due at `time` belongs to relative to `base`, or
    /// `None` for beyond-horizon times (overflow heap).
    fn level_for(base: u64, time: u64) -> Option<usize> {
        let x = base ^ time;
        if x == 0 {
            return Some(0);
        }
        let level = ((63 - x.leading_zeros()) / SLOT_BITS) as usize;
        (level < LEVELS).then_some(level)
    }

    /// Slot index of `time` at `level`.
    fn slot_of(level: usize, time: u64) -> usize {
        ((time >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// Schedule `item` at `(time, seq)`. `time` must be `≥ base` (the
    /// simulator never schedules into the past).
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        assert!(
            time >= self.base,
            "timing wheel: scheduling into the past (time {time} < base {})",
            self.base
        );
        self.insert(WheelEntry { time, seq, item });
        self.high_water = self.high_water.max(self.len());
    }

    fn insert(&mut self, e: WheelEntry<T>) {
        match Self::level_for(self.base, e.time) {
            Some(level) => {
                let slot = Self::slot_of(level, e.time);
                self.slots[level][slot].push(e);
                self.occupied[level] |= 1 << slot;
                self.in_wheel += 1;
            }
            None => self.overflow.push(OverflowEntry {
                time: e.time,
                seq: e.seq,
                item: e.item,
            }),
        }
    }

    /// Move overflow entries now within the horizon into the wheel.
    fn drain_overflow(&mut self) {
        while let Some(head) = self.overflow.peek() {
            if (self.base ^ head.time) >> HORIZON_BITS != 0 {
                break;
            }
            let OverflowEntry { time, seq, item } = self.overflow.pop().unwrap();
            self.insert(WheelEntry { time, seq, item });
        }
    }

    /// Empty `slots[level][slot]` and re-insert its entries relative to the
    /// current `base` (they land at a strictly lower level).
    fn cascade(&mut self, level: usize, slot: usize) {
        let entries = std::mem::take(&mut self.slots[level][slot]);
        self.occupied[level] &= !(1 << slot);
        self.in_wheel -= entries.len();
        self.cascades += entries.len() as u64;
        for e in entries {
            debug_assert!(
                Self::level_for(self.base, e.time).is_some_and(|l| l < level),
                "cascade must move entries strictly down"
            );
            self.insert(e);
        }
    }

    /// Pop the complete batch of entries at the earliest occupied time into
    /// `out` (cleared first), sorted by `seq`. Advances `base` to that time
    /// and returns it; returns `None` when the wheel is empty.
    pub fn pop_batch(&mut self, out: &mut Vec<WheelEntry<T>>) -> Option<u64> {
        out.clear();
        loop {
            if self.in_wheel == 0 {
                // Jump straight to the earliest far-future entry (a long
                // quiet stretch costs O(1), not O(ticks)).
                self.base = self.overflow.peek()?.time;
            }
            self.drain_overflow();
            if self.in_wheel == 0 {
                continue;
            }
            // Cascade base-aligned slots top-down so every entry inside the
            // current level-0 window actually sits at level 0.
            for level in (1..LEVELS).rev() {
                let bslot = Self::slot_of(level, self.base);
                if self.occupied[level] & (1 << bslot) != 0 {
                    self.cascade(level, bslot);
                }
            }
            // Earliest time, if any, is now in the level-0 window.
            let bslot0 = Self::slot_of(0, self.base);
            let masked = self.occupied[0] & (!0u64 << bslot0);
            if masked != 0 {
                let s = masked.trailing_zeros() as usize;
                let t = (self.base >> SLOT_BITS << SLOT_BITS) | s as u64;
                debug_assert!(t >= self.base);
                let mut batch = std::mem::take(&mut self.slots[0][s]);
                self.occupied[0] &= !(1 << s);
                self.in_wheel -= batch.len();
                self.base = t;
                out.append(&mut batch);
                self.slots[0][s] = batch; // hand the emptied vec back
                out.sort_unstable_by_key(|e| e.seq);
                debug_assert!(out.iter().all(|e| e.time == t));
                return Some(t);
            }
            // Level-0 window is empty: rebase onto the earliest occupied
            // slot of the lowest occupied level and cascade it open.
            let mut advanced = false;
            for level in 1..LEVELS {
                let bslot = Self::slot_of(level, self.base);
                let masked = self.occupied[level] & (!0u64 << bslot);
                if masked != 0 {
                    let s = masked.trailing_zeros() as u64;
                    let span = SLOT_BITS * (level as u32 + 1);
                    self.base = (self.base >> span << span) | (s << (SLOT_BITS * level as u32));
                    self.cascade(level, s as usize);
                    advanced = true;
                    break;
                }
            }
            assert!(
                advanced,
                "timing wheel invariant violated: {} entries unreachable from base {}",
                self.in_wheel, self.base
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn drain(w: &mut TimingWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        let mut batch = Vec::new();
        while let Some(t) = w.pop_batch(&mut batch) {
            for e in &batch {
                assert_eq!(e.time, t);
                out.push((e.time, e.seq, e.item));
            }
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new(0);
        // Deliberately shuffled inserts across levels, with ties.
        let entries = [
            (500_000u64, 7u64),
            (10, 2),
            (10, 1),
            (64, 3),
            (63, 4),
            (4096, 5),
            (10, 6),
            (0, 0),
        ];
        for (i, &(t, s)) in entries.iter().enumerate() {
            w.push(t, s, i as u32);
        }
        let got: Vec<(u64, u64)> = drain(&mut w).iter().map(|&(t, s, _)| (t, s)).collect();
        let mut want: Vec<(u64, u64)> = entries.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn batch_holds_every_entry_at_one_time() {
        let mut w = TimingWheel::new(0);
        for seq in 0..10u64 {
            w.push(42, seq, seq as u32);
        }
        w.push(41, 100, 99);
        let mut batch = Vec::new();
        assert_eq!(w.pop_batch(&mut batch), Some(41));
        assert_eq!(batch.len(), 1);
        assert_eq!(w.pop_batch(&mut batch), Some(42));
        assert_eq!(batch.len(), 10);
        let seqs: Vec<u64> = batch.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        assert!(w.pop_batch(&mut batch).is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_entries_round_trip() {
        let mut w = TimingWheel::new(0);
        let far = 1u64 << 40; // far past the 2^30 horizon
        w.push(far + 5, 1, 10);
        w.push(far, 0, 20);
        w.push(3, 2, 30);
        let got = drain(&mut w);
        assert_eq!(got, vec![(3, 2, 30), (far, 0, 20), (far + 5, 1, 10)]);
    }

    #[test]
    fn same_time_entries_split_across_wheel_and_overflow_merge() {
        let mut w = TimingWheel::new(0);
        let t = (1u64 << 30) + 7; // beyond horizon from base 0
        w.push(t, 5, 1); // goes to overflow
        w.push(1, 0, 0);
        let mut batch = Vec::new();
        assert_eq!(w.pop_batch(&mut batch), Some(1));
        // Now base=1; t still beyond horizon? 1 ^ t has bit 30 set → yes.
        w.push(t, 6, 2); // after rebase this may land in the wheel or overflow
        let got = drain(&mut w);
        assert_eq!(got, vec![(t, 5, 1), (t, 6, 2)], "one batch, seq order");
    }

    #[test]
    fn random_workload_matches_heap_model() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..50 {
            let mut w = TimingWheel::new(0);
            let mut model: Vec<(u64, u64, u32)> = Vec::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut batch = Vec::new();
            let mut got: Vec<(u64, u64, u32)> = Vec::new();
            for _round in 0..40 {
                // Push a burst at times ≥ now, spanning all levels + overflow.
                for _ in 0..rng.gen_range(0..8) {
                    let dt: u64 = match rng.gen_range(0..5) {
                        0 => rng.gen_range(0..64),
                        1 => rng.gen_range(0..4096),
                        2 => rng.gen_range(0..(1u64 << 18)),
                        3 => rng.gen_range(0..(1u64 << 30)),
                        _ => rng.gen_range(0..(1u64 << 40)),
                    };
                    let t = now + dt;
                    w.push(t, seq, seq as u32);
                    model.push((t, seq, seq as u32));
                    seq += 1;
                }
                // Pop one batch.
                if let Some(t) = w.pop_batch(&mut batch) {
                    assert!(t >= now);
                    now = t;
                    for e in &batch {
                        got.push((e.time, e.seq, e.item));
                    }
                }
            }
            got.extend(drain(&mut w));
            model.sort_unstable();
            assert_eq!(got, model);
            assert_eq!(w.len(), 0);
        }
    }

    #[test]
    fn quiet_stretch_rebases_in_one_jump() {
        let mut w = TimingWheel::new(0);
        w.push(0, 0, 0);
        let far = 77_000_000_000u64;
        w.push(far, 1, 1);
        let mut batch = Vec::new();
        assert_eq!(w.pop_batch(&mut batch), Some(0));
        assert_eq!(w.pop_batch(&mut batch), Some(far));
        assert_eq!(w.base(), far);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn pushing_before_base_panics() {
        let mut w = TimingWheel::new(100);
        w.push(99, 0, 0u32);
    }

    #[test]
    fn tracks_high_water_and_cascades() {
        let mut w = TimingWheel::new(0);
        for i in 0..100u64 {
            w.push(4096 + i, i, i as u32);
        }
        assert_eq!(w.high_water(), 100);
        let mut batch = Vec::new();
        while w.pop_batch(&mut batch).is_some() {}
        assert!(w.cascades() > 0, "level ≥1 inserts must cascade down");
        assert_eq!(w.high_water(), 100);
    }
}
