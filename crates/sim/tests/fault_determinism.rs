//! Property test: a run is fully reproducible from `(seed, FaultPlan)`.
//!
//! Whatever faults the plan injects — loss, duplication, extra delay,
//! crash/restart — two simulations with the same seed and the same plan
//! must produce byte-identical deposet traces, metrics, and outcomes.
//! This is the contract that makes faulty runs *debuggable*: any violation
//! found by the post-run sweep can be replayed exactly.

use pctl_deposet::ProcessId;
use pctl_sim::{
    Ctx, DelayModel, FaultPlan, LinkFaults, NullRecorder, Payload, Process, Recorder, RingRecorder,
    SimConfig, SimResult, SimTime, Simulation, TimerId,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Tick(#[allow(dead_code)] u32); // payload bytes: distinguishes messages in flight

impl Payload for Tick {
    fn tag(&self) -> &'static str {
        "tick"
    }
}

/// A chatty worker: on each of `rounds` randomized timer ticks it sends to
/// a random peer and steps a traced variable; received ticks step another.
/// Exercises every determinism-sensitive path (rng, timers, sends, trace).
struct Worker {
    n: usize,
    rounds: u32,
    sent: u32,
}

impl Process<Tick> for Worker {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Tick>) {
        ctx.init_var("recv", 0);
        let d = ctx.rand_range(1, 9);
        ctx.set_timer(d);
    }

    fn on_message(&mut self, _from: ProcessId, _msg: Tick, ctx: &mut Ctx<'_, Tick>) {
        let seen = ctx.var("recv").unwrap_or(0) + 1;
        ctx.step(&[("recv", seen)]);
        ctx.count("ticks_received", 1);
    }

    fn on_timer(&mut self, _t: TimerId, ctx: &mut Ctx<'_, Tick>) {
        if self.sent >= self.rounds {
            ctx.set_done();
            return;
        }
        self.sent += 1;
        let me = ctx.me().index();
        let hop = 1 + ctx.rand_below(self.n as u64 - 1) as usize;
        ctx.send(ProcessId(((me + hop) % self.n) as u32), Tick(self.sent));
        ctx.step(&[("sent", i64::from(self.sent))]);
        let d = ctx.rand_range(1, 9);
        ctx.set_timer(d);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Tick>) {
        // Pre-crash timers are stale; re-arm or the script stalls.
        let d = ctx.rand_range(1, 9);
        ctx.set_timer(d);
    }
}

fn run(seed: u64, faults: FaultPlan) -> SimResult {
    run_with(seed, faults, Box::new(NullRecorder))
}

fn run_with(seed: u64, faults: FaultPlan, rec: Box<dyn Recorder>) -> SimResult {
    let n = 3usize;
    let procs: Vec<Box<dyn Process<Tick>>> = (0..n)
        .map(|_| {
            Box::new(Worker {
                n,
                rounds: 12,
                sent: 0,
            }) as Box<dyn Process<Tick>>
        })
        .collect();
    let cfg = SimConfig {
        seed,
        delay: DelayModel::Uniform { min: 1, max: 10 },
        faults,
        ..SimConfig::default()
    };
    Simulation::with_recorder(cfg, procs, rec).run()
}

/// Everything observable about a run, as one byte string.
fn fingerprint(r: &SimResult) -> String {
    format!(
        "{}\n{}\n{:?}\n{:?}\n{:?}",
        pctl_deposet::trace::to_json(&r.deposet),
        serde_json::to_string(&r.metrics).unwrap(),
        r.end_time,
        r.done,
        r.stopped,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn identical_seed_and_plan_reproduce_the_run_bit_for_bit(
        seed in 0u64..1_000_000,
        drop_pct in 0u32..35,
        dup_pct in 0u32..35,
        extra in 0u64..20,
        crash_sel in 0u32..4,
        crash_at in 1u64..80,
        restart_sel in 0u32..3,
    ) {
        let mut plan = FaultPlan {
            default_link: LinkFaults {
                drop_p: f64::from(drop_pct) / 100.0,
                dup_p: f64::from(dup_pct) / 100.0,
                extra_delay_max: extra,
            },
            ..FaultPlan::default()
        };
        if crash_sel > 0 {
            let restart = (restart_sel > 0).then(|| u64::from(restart_sel) * 50);
            plan = plan.with_crash(ProcessId(crash_sel - 1), SimTime(crash_at), restart);
        }
        let a = run(seed, plan.clone());
        let b = run(seed, plan);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// Attaching a telemetry recorder must not perturb the run: the traced
    /// deposet, metrics, and outcome stay byte-identical whether recording
    /// is off (NullRecorder) or on (RingRecorder). Telemetry clocks and
    /// flow ids never touch the simulation's RNG streams.
    #[test]
    fn recording_never_perturbs_the_run(
        seed in 0u64..1_000_000,
        drop_pct in 0u32..35,
        dup_pct in 0u32..35,
        extra in 0u64..20,
    ) {
        let plan = FaultPlan {
            default_link: LinkFaults {
                drop_p: f64::from(drop_pct) / 100.0,
                dup_p: f64::from(dup_pct) / 100.0,
                extra_delay_max: extra,
            },
            ..FaultPlan::default()
        };
        let plain = run(seed, plan.clone());
        let recorded = run_with(seed, plan.clone(), Box::new(RingRecorder::new(1 << 16)));
        prop_assert_eq!(fingerprint(&plain), fingerprint(&recorded));
        // And the recorder actually captured the run's telemetry.
        prop_assert!(!recorded.events().is_empty());

        // The hot-path profiler is equally observational: a run with
        // `pctl_prof` enabled (spans + gauges firing in deposet
        // construction and engine code) must be bit-identical to the
        // uninstrumented run. The enable/disable bracket restores the
        // profiler state even if the body panics.
        let profiled = {
            struct ProfGuard;
            impl Drop for ProfGuard {
                fn drop(&mut self) {
                    pctl_prof::set_enabled(false);
                }
            }
            let _guard = ProfGuard;
            pctl_prof::reset();
            pctl_prof::set_enabled(true);
            run(seed, plan)
        };
        prop_assert_eq!(fingerprint(&plain), fingerprint(&profiled));
    }
}
