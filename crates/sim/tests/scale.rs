//! 10⁷-event scale proof for the actor-model core.
//!
//! `#[ignore]` by default (it allocates a multi-GB deposet and takes
//! minutes in debug builds); CI's `sim-scale` release smoke job runs it
//! with `--ignored` and uploads the gauge report. Asserts the two
//! properties the ISSUE pins at scale:
//!
//! 1. **Determinism survives volume** — two runs with the same
//!    `(seed, plan)` produce bit-identical metrics JSON (and identical
//!    engine stats) across 10⁷ dispatched events.
//! 2. **Memory is proportional to live state** — the arena high-water
//!    gauge equals the known in-flight population of the workload
//!    (`processes × fanout`), NOT the total event count: the engine's
//!    footprint must not grow with trace length.

use pctl_sim::scenarios::ring_flood;
use pctl_sim::{DelayModel, SimConfig, SimResult, SimTime, StopReason};

const PROCESSES: u32 = 64;
const FANOUT: u32 = 16;
// ceil(1e7 / (64·16)) hops → 10 000 384 deliveries ≥ 10⁷.
const HOPS: u32 = 9_766;

fn run_once(seed: u64) -> SimResult {
    let cfg = SimConfig {
        seed,
        delay: DelayModel::Uniform { min: 1, max: 20 },
        max_events: usize::MAX,
        max_time: SimTime(u64::MAX),
        ..SimConfig::default()
    };
    ring_flood(PROCESSES, FANOUT, HOPS, cfg).run()
}

#[test]
#[ignore = "10^7-event run: minutes in debug, multi-GB trace; CI runs it in the sim-scale release job"]
fn ten_million_events_deterministic_with_bounded_live_state() {
    let expected = u64::from(PROCESSES) * u64::from(FANOUT) * u64::from(HOPS);
    assert!(expected >= 10_000_000);

    let a = run_once(0x5CA1_E5EED);
    assert_eq!(a.stopped, StopReason::Quiescent);
    assert_eq!(a.core.events_dispatched, expected);
    assert_eq!(a.metrics.counter("msgs_total"), expected);

    // Peak engine memory tracks live state, not trace length: the ring
    // keeps exactly processes×fanout messages in flight, so the arena's
    // high-water mark (and its actual slab footprint) must equal that —
    // the "fixed multiple" of the ISSUE is 1 for this workload, with a 2×
    // allowance so a benign scheduling change doesn't flake the job.
    let live = u64::from(PROCESSES) * u64::from(FANOUT);
    assert!(
        a.core.arena_high_water <= 2 * live,
        "arena high-water {} exceeds 2x live state {live}",
        a.core.arena_high_water
    );
    assert!(
        a.core.arena_slots <= 2 * live,
        "arena slab {} grew past 2x live state {live}",
        a.core.arena_slots
    );
    assert_eq!(
        a.core.arena_live_at_end, 0,
        "quiescent run drains the arena"
    );
    assert!(
        a.core.wheel_high_water <= 2 * live,
        "pending-event peak {} exceeds 2x live state {live}",
        a.core.wheel_high_water
    );

    // Bit-identical reproduction at full volume.
    let b = run_once(0x5CA1_E5EED);
    assert_eq!(
        serde_json::to_string(&a.metrics).unwrap(),
        serde_json::to_string(&b.metrics).unwrap(),
        "same (seed, plan) must reproduce metrics bit for bit at 10^7 events"
    );
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.core.events_dispatched, b.core.events_dispatched);
    assert_eq!(a.core.timesteps, b.core.timesteps);
    assert_eq!(a.core.arena_high_water, b.core.arena_high_water);
    assert_eq!(a.core.wheel_high_water, b.core.wheel_high_water);
    assert_eq!(a.core.wheel_cascades, b.core.wheel_cascades);

    // Gauge report for the CI artifact (stdout is captured by --nocapture).
    println!(
        "sim-scale gauge report: {}",
        serde_json::to_string(&a.core).unwrap()
    );
}
