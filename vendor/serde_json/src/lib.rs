//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` crate's [`Value`] tree as JSON text.
//!
//! Guarantees the workspace relies on:
//! * output is deterministic (object entries keep the order the serializer
//!   produced them in), so equal values give byte-equal strings;
//! * `from_str(&to_string(&v))` round-trips every value the workspace's
//!   derives produce.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::value::Value;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn at(msg: impl Into<String>, pos: usize) -> Self {
        Error(format!("{} at byte {pos}", msg.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters", p.pos));
    }
    T::from_value(&v).map_err(|e| Error(e.0))
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(x) => write_float(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * level {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/inf; degrade to null like a lossy printer would.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a decimal point so the value reparses as a float.
        let _ = fmt::Write::write_fmt(out, format_args!("{x:.1}"));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::at("expected a JSON value", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::at("invalid float", start))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::at("integer overflow", start))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::at("integer overflow", start))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::at("invalid surrogate pair", self.pos))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::at("invalid \\u escape", self.pos))?
                            };
                            s.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(Error::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::at("invalid UTF-8", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos;
        if self.bytes.len() < start + 4 {
            return Err(Error::at("truncated \\u escape", start));
        }
        let text = std::str::from_utf8(&self.bytes[start..start + 4])
            .map_err(|_| Error::at("invalid \\u escape", start))?;
        let cp =
            u32::from_str_radix(text, 16).map_err(|_| Error::at("invalid \\u escape", start))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let compact = to_string(v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(&parsed, v, "compact roundtrip of {compact}");
        let pretty = to_string_pretty(v).unwrap();
        let parsed: Value = from_str(&pretty).unwrap();
        assert_eq!(&parsed, v, "pretty roundtrip of {pretty}");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::UInt(18_446_744_073_709_551_615));
        roundtrip(&Value::Int(-42));
        roundtrip(&Value::Float(1.5));
        roundtrip(&Value::Float(3.0));
        roundtrip(&Value::String("he\"llo\n\\ wörld \u{0007}".to_string()));
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(&Value::Array(vec![]));
        roundtrip(&Value::Object(vec![]));
        roundtrip(&Value::Object(vec![
            (
                "a".to_string(),
                Value::Array(vec![Value::UInt(1), Value::Int(-2)]),
            ),
            (
                "b".to_string(),
                Value::Object(vec![("x".to_string(), Value::Null)]),
            ),
        ]));
    }

    #[test]
    fn integral_float_keeps_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        let back: f64 = from_str("3.0").unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Value::Object(vec![
            ("z".to_string(), Value::UInt(1)),
            ("a".to_string(), Value::UInt(2)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
