//! The value tree both `serde` traits target and `serde_json` renders.

use std::fmt;

/// A JSON-shaped value. Objects preserve insertion order (field order of the
/// deriving struct), which keeps serialized output stable across runs — the
/// property the trace-determinism tests rely on.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or explicitly signed integer.
    Int(i64),
    /// Non-negative integer (the common case for ids, times, counters).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Entries of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Items of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::String(s) => write!(f, "{s:?}"),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{k:?}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}
