//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal serialization framework with the same *surface* the codebase
//! uses: `Serialize`/`Deserialize` traits, `#[derive(Serialize,
//! Deserialize)]`, `#[serde(transparent)]`, and Option-skipping field
//! semantics. Instead of serde's visitor architecture it uses a simple
//! value tree ([`value::Value`]), which the vendored `serde_json` renders
//! and parses. Round-trips are self-consistent; byte compatibility with
//! upstream serde_json is not a goal (nothing in the repo depends on it).
//!
//! Field semantics implemented by the derive:
//! * struct fields serializing to [`value::Value::Null`] (i.e. `None`
//!   options) are omitted from objects, and absent fields deserialize from
//!   `Null` — together these subsume `#[serde(default,
//!   skip_serializing_if = "Option::is_none")]` on `Option` fields;
//! * `#[serde(transparent)]` on single-field structs delegates to the
//!   field;
//! * enums use the externally-tagged representation: `"Unit"`,
//!   `{"Newtype": v}`, `{"Struct": {..}}`, `{"Tuple": [..]}`.

#![forbid(unsafe_code)]

pub mod value;

use std::collections::BTreeMap;
use std::fmt;
use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization failure: a human-readable path + expectation message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Error for a type mismatch.
    pub fn expected(what: &str, ty: &str, got: &Value) -> Self {
        DeError(format!("expected {what} for {ty}, got {}", got.kind()))
    }

    /// Prefix the error with a field/variant context.
    pub fn context(self, ctx: &str) -> Self {
        DeError(format!("{ctx}: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- helpers used by generated code ----

/// Look up `key` in an object's entries; absent keys read as `Null` (which
/// `Option` fields accept as `None`).
pub fn field<T: Deserialize>(entries: &[(String, Value)], key: &str) -> Result<T, DeError> {
    let v = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or(Value::Null);
    if matches!(v, Value::Null) && !entries.iter().any(|(k, _)| k == key) {
        // Distinguish "absent" from "present null" only in the error text.
        return T::from_value(&Value::Null)
            .map_err(|e| e.context(&format!("missing field `{key}`")));
    }
    T::from_value(&v).map_err(|e| e.context(&format!("field `{key}`")))
}

// ---- primitive impls ----

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) if i >= 0 => <$t>::try_from(i as u64)
                        .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t)))),
                    ref other => Err(DeError::expected("unsigned integer", stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => i64::try_from(u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError(format!("{u} out of range for {}", stringify!($t)))),
                    ref other => Err(DeError::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    ref other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", "char", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v).map_err(|e| e.context(k))?)))
                .collect(),
            other => Err(DeError::expected("object", "BTreeMap", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", "tuple", other)),
                }
            }
        }
    };
}
impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
    }

    #[test]
    fn cross_numeric_coercions() {
        assert_eq!(u64::from_value(&Value::Int(5)), Ok(5));
        assert_eq!(i64::from_value(&Value::UInt(5)), Ok(5));
        assert_eq!(f64::from_value(&Value::Int(2)), Ok(2.0));
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        m.insert("b".to_string(), -2i64);
        assert_eq!(BTreeMap::<String, i64>::from_value(&m.to_value()), Ok(m));
    }
}
