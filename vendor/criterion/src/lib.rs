//! Offline stand-in for `criterion`.
//!
//! Keeps the bench files compiling and runnable without the real crate:
//! `bench_function`/`bench_with_input` execute the closure `sample_size`
//! times (after one warm-up call) and print the mean wall-clock time per
//! sample. No statistics, plots, or baselines — the workspace's real
//! measurements flow through `pctl-bench`'s own Table writer; these benches
//! are smoke-level.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one measured closure.
pub struct Bencher {
    iters: u64,
    /// Mean time per `iter` call of the last measurement.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, `self.iters` times, recording the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed() / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX);
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level bench driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one("", &id.into().id, 10, f);
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; warm-up is always one call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement is `sample_size` calls.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Number of measured calls per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmark `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.id, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().id, self.sample_size, f);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: u64, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b); // warm-up
    b.iters = samples;
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench {label:<50} {:>12.3?} /iter ({samples} samples)",
        b.elapsed
    );
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                n * 2
            });
        });
        group.finish();
        // one warm-up call with 1 iter + one measured call with 3 iters
        assert_eq!(calls, 4);
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
