//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the input item with `proc_macro` directly (no `syn`/`quote`
//! available offline) and emits source text, which is re-parsed into a
//! `TokenStream`. Supports the shapes this workspace derives on: named and
//! tuple structs (newtype structs delegate to the inner field, matching
//! upstream serde), enums with unit/newtype/tuple/struct variants, and the
//! `#[serde(transparent)]` attribute. Other `#[serde(...)]` attributes are
//! accepted and ignored because the uniform field rules (skip `Null` on
//! serialize, absent ⇒ `Null` on deserialize) already give `Option` fields
//! the `default` + `skip_serializing_if` behavior the workspace asks for.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Parsed shape of the deriving item.
struct Input {
    name: String,
    transparent: bool,
    data: Data,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---- input parsing ----

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;
    while is_punct(toks.get(i), '#') {
        if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
            transparent |= attr_mentions(g.stream(), "transparent");
        }
        i += 2;
    }
    i = skip_vis(&toks, i);
    let kw = ident(&toks, i);
    let name = ident(&toks, i + 1);
    i += 2;
    // No generics in this workspace's derives; bail loudly if they appear.
    if is_punct(toks.get(i), '<') {
        panic!("vendored serde_derive does not support generic types (on `{name}`)");
    }
    let data = match kw.as_str() {
        "struct" => Data::Struct(parse_struct_body(&toks, i, &name)),
        "enum" => Data::Enum(parse_enum_body(&toks, i, &name)),
        other => panic!("derive on unsupported item kind `{other}`"),
    };
    Input {
        name,
        transparent,
        data,
    }
}

fn parse_struct_body(toks: &[TokenTree], i: usize, name: &str) -> Fields {
    match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("unexpected struct body for `{name}`: {other:?}"),
    }
}

fn parse_enum_body(toks: &[TokenTree], i: usize, name: &str) -> Vec<Variant> {
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("unexpected enum body for `{name}`: {other:?}"),
    };
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while is_punct(toks.get(i), '#') {
            i += 2; // attribute: `#` + bracket group
        }
        let vname = ident(&toks, i);
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip anything up to the variant separator (covers discriminants).
        while i < toks.len() && !is_punct(toks.get(i), ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant {
            name: vname,
            fields,
        });
    }
    variants
}

/// Field names of a `{ .. }` body; types are skipped (angle-bracket aware
/// so `BTreeMap<String, u64>` does not split a field in two).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while is_punct(toks.get(i), '#') {
            i += 2;
        }
        i = skip_vis(&toks, i);
        names.push(ident(&toks, i));
        i += 1; // name
        i += 1; // `:`
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // `,` (or end)
    }
    names
}

/// Arity of a `( .. )` body: count depth-0 comma-separated segments.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut in_segment = false;
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if in_segment {
                    count += 1;
                }
                in_segment = false;
                continue;
            }
            _ => {}
        }
        in_segment = true;
    }
    if in_segment {
        count += 1;
    }
    count
}

fn attr_mentions(attr: TokenStream, word: &str) -> bool {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(w) if w.to_string() == word))
        }
        _ => false,
    }
}

fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if matches!(toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn ident(toks: &[TokenTree], i: usize) -> String {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, got {other:?}"),
    }
}

// ---- code generation ----

/// Push statements that serialize named fields (available as expressions via
/// `$access`) into a `Vec<(String, Value)>` named `entries`, skipping `Null`s.
fn push_named_entries(out: &mut String, fields: &[String], access: &dyn Fn(&str) -> String) {
    out.push_str("let mut entries: Vec<(String, ::serde::value::Value)> = Vec::new();\n");
    for f in fields {
        let _ = writeln!(
            out,
            "let v = ::serde::Serialize::to_value(&{});\n\
             if !matches!(v, ::serde::value::Value::Null) {{ entries.push((\"{f}\".to_string(), v)); }}",
            access(f)
        );
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.data {
        Data::Struct(Fields::Unit) => body.push_str("::serde::value::Value::Null"),
        Data::Struct(Fields::Tuple(1)) => {
            // Newtype structs delegate to the inner value (upstream default,
            // and what #[serde(transparent)] asks for).
            body.push_str("::serde::Serialize::to_value(&self.0)");
        }
        Data::Struct(Fields::Tuple(n)) => {
            body.push_str("::serde::value::Value::Array(vec![");
            for i in 0..*n {
                let _ = write!(body, "::serde::Serialize::to_value(&self.{i}),");
            }
            body.push_str("])");
        }
        Data::Struct(Fields::Named(fields)) if input.transparent => {
            let _ = write!(body, "::serde::Serialize::to_value(&self.{})", fields[0]);
        }
        Data::Struct(Fields::Named(fields)) => {
            push_named_entries(&mut body, fields, &|f| format!("self.{f}"));
            body.push_str("::serde::value::Value::Object(entries)");
        }
        Data::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = writeln!(
                            body,
                            "{name}::{vn} => ::serde::value::Value::String(\"{vn}\".to_string()),"
                        );
                    }
                    Fields::Tuple(1) => {
                        let _ = writeln!(
                            body,
                            "{name}::{vn}(f0) => ::serde::value::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let _ = write!(
                            body,
                            "{name}::{vn}({}) => ::serde::value::Value::Object(vec![(\"{vn}\".to_string(), ::serde::value::Value::Array(vec![",
                            binders.join(", ")
                        );
                        for b in &binders {
                            let _ = write!(body, "::serde::Serialize::to_value({b}),");
                        }
                        body.push_str("])) ]),\n");
                    }
                    Fields::Named(fields) => {
                        let _ = writeln!(body, "{name}::{vn} {{ {} }} => {{", fields.join(", "));
                        push_named_entries(&mut body, fields, &|f| f.to_string());
                        let _ = writeln!(
                            body,
                            "::serde::value::Value::Object(vec![(\"{vn}\".to_string(), ::serde::value::Value::Object(entries))]) }}"
                        );
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn named_field_inits(fields: &[String], ctx: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let _ = writeln!(
            out,
            "{f}: ::serde::field(entries, \"{f}\").map_err(|e| e.context(\"{ctx}\"))?,"
        );
    }
    out
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.data {
        Data::Struct(Fields::Unit) => {
            let _ = write!(body, "{{ let _ = v; Ok({name}) }}");
        }
        Data::Struct(Fields::Tuple(1)) => {
            let _ = write!(body, "::serde::Deserialize::from_value(v).map({name})");
        }
        Data::Struct(Fields::Tuple(n)) => {
            let _ = write!(
                body,
                "match v {{\n\
                     ::serde::value::Value::Array(items) if items.len() == {n} => Ok({name}("
            );
            for i in 0..*n {
                let _ = write!(body, "::serde::Deserialize::from_value(&items[{i}])?,");
            }
            let _ = write!(
                body,
                ")),\n\
                 other => Err(::serde::DeError::expected(\"{n}-element array\", \"{name}\", other)),\n}}"
            );
        }
        Data::Struct(Fields::Named(fields)) if input.transparent => {
            let _ = write!(
                body,
                "Ok({name} {{ {}: ::serde::Deserialize::from_value(v)? }})",
                fields[0]
            );
        }
        Data::Struct(Fields::Named(fields)) => {
            let _ = write!(
                body,
                "match v {{\n\
                     ::serde::value::Value::Object(entries) => Ok({name} {{\n{}}}),\n\
                     other => Err(::serde::DeError::expected(\"object\", \"{name}\", other)),\n}}",
                named_field_inits(fields, name)
            );
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                let ctx = format!("{name}::{vn}");
                match &v.fields {
                    Fields::Unit => {
                        let _ = writeln!(unit_arms, "\"{vn}\" => Ok({name}::{vn}),");
                    }
                    Fields::Tuple(1) => {
                        let _ = writeln!(
                            payload_arms,
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(payload).map_err(|e| e.context(\"{ctx}\"))?)),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let _ = write!(
                            payload_arms,
                            "\"{vn}\" => match payload {{\n\
                                 ::serde::value::Value::Array(items) if items.len() == {n} => Ok({name}::{vn}("
                        );
                        for i in 0..*n {
                            let _ = write!(
                                payload_arms,
                                "::serde::Deserialize::from_value(&items[{i}]).map_err(|e| e.context(\"{ctx}\"))?,"
                            );
                        }
                        let _ = writeln!(
                            payload_arms,
                            ")),\n\
                             other => Err(::serde::DeError::expected(\"{n}-element array\", \"{ctx}\", other)),\n}},"
                        );
                    }
                    Fields::Named(fields) => {
                        let _ = writeln!(
                            payload_arms,
                            "\"{vn}\" => match payload {{\n\
                                 ::serde::value::Value::Object(entries) => Ok({name}::{vn} {{\n{}}}),\n\
                                 other => Err(::serde::DeError::expected(\"object\", \"{ctx}\", other)),\n}},",
                            named_field_inits(fields, &ctx)
                        );
                    }
                }
            }
            let _ = write!(
                body,
                "match v {{\n\
                     ::serde::value::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => Err(::serde::DeError(format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::value::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {payload_arms}\
                             other => Err(::serde::DeError(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::expected(\"string or single-key object\", \"{name}\", other)),\n}}"
            );
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
