//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`strategy::Just`], [`collection::vec`], the
//! [`proptest!`] test macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` result macros.
//!
//! Differences from upstream, deliberately accepted for an offline harness:
//! no shrinking (a failing case reports its case index and message, not a
//! minimal counterexample), and cases are derived from a fixed per-case seed
//! so runs are deterministic without a persistence file.

#![forbid(unsafe_code)]

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    ///
    /// Upstream proptest separates strategies from value trees to support
    /// shrinking; this vendored version samples directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn gen_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.clone());
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// Deterministic per-case RNG (wraps the workspace's vendored StdRng).
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        /// The RNG for case number `case`: fixed stream, so every run of the
        /// suite explores the same inputs.
        pub fn for_case(case: u32) -> Self {
            TestRng(rand::rngs::StdRng::seed_from_u64(
                0x7072_6F70_0000_0000_u64 ^ u64::from(case),
            ))
        }
    }

    /// Test-suite configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property failed; the run aborts with this message.
        Fail(String),
        /// The case was rejected by `prop_assume!`; it is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

/// Define property tests. Bodies run once per case with inputs drawn from
/// the strategies; `prop_assert!`-family macros abort the case.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strats = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::gen_value(&strats, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case #{case} of {}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )+
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Assert inside a proptest body; failure aborts the case with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair(bound: usize) -> impl Strategy<Value = (usize, Vec<usize>)> {
        (1..bound).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0..n, 0..4)).prop_map(|(n, v)| (n, v))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in -2i32..=2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn flat_map_respects_dependent_bound((n, v) in arb_pair(12)) {
            prop_assert!(n < 12);
            for item in v {
                prop_assert!(item < n, "item {} out of bound {}", item, n);
            }
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn same_case_same_value() {
        let strat = (0u64..1_000_000, crate::collection::vec(0u32..9, 1..5));
        let mut a = TestRng::for_case(7);
        let mut b = TestRng::for_case(7);
        assert_eq!(strat.gen_value(&mut a), strat.gen_value(&mut b));
    }
}
