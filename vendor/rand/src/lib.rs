//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of the rand 0.8 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! and [`Rng::gen_bool`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid and fully deterministic, which is the
//! property the simulator and the experiment harness actually rely on. The
//! exact output stream differs from upstream rand; nothing in this
//! repository pins upstream's stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is vendored).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed; equal seeds give equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        // 53 uniform mantissa bits; p = 0.0 can never fire, p = 1.0 always.
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that integer samples can be drawn from (vendored subset of
/// rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (no modulo bias).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound >= 1);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Zone rejection: accept only draws below the largest multiple of bound.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + below(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, width + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(below(rng, width) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(below(rng, width + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 as its authors recommend.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let distinct = (0..100).any(|_| a.gen_range(0u64..1000) != c.gen_range(0u64..1000));
        assert!(distinct, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(5u32..=6);
            assert!((5..=6).contains(&w));
            let s = r.gen_range(0usize..1);
            assert_eq!(s, 0);
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_frequency() {
        let mut r = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 frequency off: {hits}");
    }

    #[test]
    fn uniformity_rough_chi_square() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!(
                (800..1200).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }
}
