//! Quickstart: trace → detect → control → verified controlled replay.
//!
//! Run with: `cargo run --example quickstart`

use predicate_control::prelude::*;

fn main() {
    // 1. A traced computation: three worker processes, each of which takes
    //    a "maintenance window" (avail = 0) at overlapping times, plus some
    //    coordination messages.
    let mut b = DeposetBuilder::new(3);
    for p in 0..3 {
        b.init_vars(p, &[("avail", 1)]);
    }
    let t0 = b.send(0, "work-handoff");
    b.recv(1, t0, &[]);
    for p in 0..3 {
        b.internal(p, &[("avail", 0)]);
        b.internal(p, &[]);
        b.internal(p, &[("avail", 1)]);
    }
    let t1 = b.send(2, "done");
    b.recv(0, t1, &[]);
    let computation = b.finish().expect("valid trace");
    println!(
        "traced computation: {} processes, {} states, {} messages",
        computation.process_count(),
        computation.total_states(),
        computation.messages().len()
    );

    // 2. The safety property: at least one worker is always available.
    let safety = DisjunctivePredicate::at_least_one(3, "avail");

    // 3. Detection (Garg–Waldecker weak conjunctive detection of ¬B).
    match detect_disjunctive_violation(&computation, &safety) {
        Some(bad) => println!("violation possible at consistent global state {bad}"),
        None => {
            println!("no violation possible; nothing to control");
            return;
        }
    }

    // 4. Off-line predicate control (the paper's Figure 2 algorithm).
    let control = match control_disjunctive(&computation, &safety, OfflineOptions::default()) {
        Ok(c) => c,
        Err(infeasible) => {
            println!("property infeasible: {infeasible}");
            return;
        }
    };
    println!("synthesized control relation: {control}");

    // 5. Machine-checked soundness: every consistent global state of the
    //    controlled computation satisfies the property.
    verify_disjunctive(&computation, &safety, &control, 1_000_000)
        .expect("control verifies exhaustively");
    println!("exhaustive verification: OK");

    // 6. Active debugging: replay the computation under control. The
    //    control relation becomes real (simulated) control messages with
    //    blocking receives; the violation cannot recur.
    let outcome = replay(&computation, &control, &ReplayConfig::default());
    assert!(outcome.completed(), "replay ran to completion");
    assert!(
        outcome.fidelity(&computation),
        "replay reproduced each process's behaviour"
    );
    assert!(
        detect_disjunctive_violation(outcome.deposet(), &safety).is_none(),
        "bug eliminated in the controlled re-execution"
    );
    println!(
        "controlled replay: {} control messages, violation eliminated",
        outcome.sim.metrics.counter("msgs_ctrl")
    );
}
