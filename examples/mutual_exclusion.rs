//! (n−1)-mutual exclusion via on-line predicate control, compared against
//! classical k-mutex algorithms (paper Section 6).
//!
//! Run with: `cargo run --example mutual_exclusion [-- <n>]`

use predicate_control::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);
    assert!(n >= 2, "need at least two processes");
    println!("k-mutual exclusion with n = {n}, k = n-1 = {}\n", n - 1);

    let cfg = WorkloadConfig {
        processes: n,
        entries_per_process: 8,
        think: (20, 60),
        cs: (5, 15),
        seed: 1,
        delay: 10,
    };

    println!(
        "{:<18} {:>11} {:>11} {:>10} {:>9} {:>9}",
        "algorithm", "msgs/entry", "resp mean", "resp max", "max conc", "safe"
    );
    for rep in compare_all(&cfg) {
        let (mean, max) = rep.response.map(|s| (s.mean, s.max)).unwrap_or((0.0, 0));
        println!(
            "{:<18} {:>11.3} {:>11.1} {:>10} {:>9} {:>9}",
            rep.algo,
            rep.msgs_per_entry,
            mean,
            max,
            rep.max_concurrent,
            !rep.deadlocked && rep.max_concurrent <= rep.k
        );
        assert!(!rep.deadlocked && rep.max_concurrent <= rep.k);
    }

    println!(
        "\nThe anti-token (scapegoat) pays messages only when its own holder wants\n\
         the critical section — amortized ~2 messages per n entries — while the\n\
         baselines pay per entry. The single anti-token is a liability, not a\n\
         privilege: exactly the paper's Section 6 observation for large k."
    );

    // The safety property, verified on the traced computation itself.
    let r = run_antitoken(&cfg, predicate_control::control::online::PeerSelect::Random);
    let pred = DisjunctivePredicate::at_least_one_not(n, "cs");
    assert!(
        detect_disjunctive_violation(&r.deposet, &pred).is_none(),
        "no consistent global state has all {n} processes in their CS"
    );
    println!("\ntrace-level check: no consistent global state violates ∨ᵢ ¬csᵢ ✓");
}
