//! Primary/backup failover under a CNF safety property — exercising the
//! extension beyond plain disjunctive predicates (paper Conclusions:
//! conjunctions of disjunctive clauses / locally independent predicates).
//!
//! System: a primary (P0) and two backups (P1, P2). Safety:
//!
//! 1. at least one replica is up            (up₀ ∨ up₁ ∨ up₂)
//! 2. never two nodes believe they lead     (¬leader₀ ∨ ¬leader₁), pairwise
//!
//! Run with: `cargo run --example primary_backup`

use predicate_control::prelude::*;

fn main() {
    // Trace: the primary leads, crashes, and each backup briefly claims
    // leadership during the same window; replicas also take restarts.
    let mut b = DeposetBuilder::new(3);
    b.init_vars(0, &[("up", 1), ("leader", 1)]);
    b.init_vars(1, &[("up", 1), ("leader", 0)]);
    b.init_vars(2, &[("up", 1), ("leader", 0)]);

    // P0 crashes (drops leadership), later restarts as follower.
    b.internal(0, &[("up", 0), ("leader", 0)]);
    b.internal(0, &[]);
    b.internal(0, &[("up", 1)]);
    // P1 claims leadership, then steps down for a restart, comes back up.
    b.internal(1, &[("leader", 1)]);
    b.internal(1, &[("leader", 0), ("up", 0)]);
    b.internal(1, &[("up", 1)]);
    // P2 also claims leadership in an overlapping window, then yields.
    b.internal(2, &[("leader", 1)]);
    b.internal(2, &[("leader", 0)]);
    let trace = b.finish().unwrap();
    println!(
        "trace: {} states across {} replicas",
        trace.total_states(),
        trace.process_count()
    );

    // --- Clause A: availability (plain disjunctive) ---------------------------
    let availability = DisjunctivePredicate::at_least_one(3, "up");
    let avail_bug = detect_disjunctive_violation(&trace, &availability);
    println!("\navailability violation possible: {avail_bug:?}");

    // --- Clause B: single-leader, as pairwise mutual exclusions --------------
    let single_leader = CnfPredicate::new(vec![
        CnfPredicate::pairwise_mutex(3, 0, 1, "leader"),
        CnfPredicate::pairwise_mutex(3, 0, 2, "leader"),
        CnfPredicate::pairwise_mutex(3, 1, 2, "leader"),
    ]);

    // Is the leader predicate "locally independent" here? (It is not — the
    // leadership windows overlap, which is exactly why control is needed.)
    let locals: Vec<LocalPredicate> = (0..3).map(|_| LocalPredicate::not_var("leader")).collect();
    println!(
        "leadership windows mutually separated: {}",
        mutually_separated(&trace, &locals)
    );

    // --- Compose: control each clause and merge ------------------------------
    let mut merged = match control_cnf(&trace, &single_leader, OfflineOptions::default()) {
        Ok(rel) => {
            println!("single-leader control (merged per-clause chains): {rel}");
            rel
        }
        Err(e) => {
            println!("CNF composition failed: {e}");
            return;
        }
    };
    if avail_bug.is_some() {
        let rel_avail = control_disjunctive(&trace, &availability, OfflineOptions::default())
            .expect("availability feasible");
        println!("availability control: {rel_avail}");
        merged = merged.merged(&rel_avail);
    }

    // --- Verify the conjunction exhaustively ----------------------------------
    let controlled =
        ControlledDeposet::new(&trace, merged.clone()).expect("merged relation does not interfere");
    let mut checked = 0usize;
    for g in controlled.consistent_global_states(1_000_000).unwrap() {
        assert!(
            availability.eval(&trace, &g),
            "availability violated at {g}"
        );
        assert!(single_leader.eval(&trace, &g), "dual leadership at {g}");
        checked += 1;
    }
    println!(
        "\nverified both clauses on all {checked} consistent global states of the \
         controlled computation ✓"
    );

    // --- And actively replay ---------------------------------------------------
    let out = replay(&trace, &merged, &ReplayConfig::default());
    assert!(out.completed() && out.fidelity(&trace));
    assert!(detect_disjunctive_violation(out.deposet(), &availability).is_none());
    println!(
        "controlled replay with {} control messages: split-brain and blackout \
         both impossible ✓",
        out.sim.metrics.counter("msgs_ctrl")
    );
}
