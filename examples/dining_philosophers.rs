//! "At least one philosopher is thinking" (the paper's example predicate
//! (4)) enforced two ways:
//!
//! * **off-line** — take a traced dinner where everyone ate simultaneously
//!   and synthesize control so no replay starves the table;
//! * **on-line** — run fresh dinners under the scapegoat strategy.
//!
//! Run with: `cargo run --example dining_philosophers [-- <philosophers>]`

use predicate_control::control::online::{phased_system, PeerSelect, Phase};
use predicate_control::deposet::lattice;
use predicate_control::prelude::*;
use predicate_control::sim::Simulation;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    println!("{n} dining philosophers; safety: someone is always thinking\n");

    // --- Off-line: a traced dinner where all ate at once ---------------------
    // Philosopher i thinks, eats (eating = 1), thinks again — windows overlap.
    let mut b = DeposetBuilder::new(n);
    for p in 0..n {
        b.init_vars(p, &[("eating", 0)]);
        b.internal(p, &[("eating", 1)]);
        b.internal(p, &[]);
        b.internal(p, &[("eating", 0)]);
    }
    let dinner = b.finish().unwrap();
    let thinking = DisjunctivePredicate::at_least_one_not(n, "eating");

    let bad = detect_disjunctive_violation(&dinner, &thinking)
        .expect("everyone-eating is possible in the trace");
    println!("violation possible: all philosophers eating at {bad}");

    let control = control_disjunctive(&dinner, &thinking, OfflineOptions::default())
        .expect("feasible: eating windows are interior");
    println!("off-line control ({} tuples): {control}", control.len());
    verify_disjunctive(&dinner, &thinking, &control, 5_000_000).expect("verifies");

    // Count how much concurrency the control preserves.
    let before = lattice::count_consistent_global_states(&dinner, 10_000_000).unwrap();
    let c = ControlledDeposet::new(&dinner, control.clone()).unwrap();
    let after = c.consistent_global_states(10_000_000).unwrap().len();
    println!(
        "consistent global states: {before} → {after} \
         ({:.1}% of schedules preserved, violations removed)",
        100.0 * after as f64 / before as f64
    );

    let outcome = replay(&dinner, &control, &ReplayConfig::default());
    assert!(outcome.completed() && outcome.fidelity(&dinner));
    assert!(detect_disjunctive_violation(outcome.deposet(), &thinking).is_none());
    println!("controlled replay: table never fully occupied ✓");

    // --- On-line: fresh dinners under the scapegoat strategy ------------------
    println!("\nfresh dinners under on-line control:");
    let scripts: Vec<Vec<Phase>> = (0..n)
        .map(|i| {
            (0..3)
                .map(|round| Phase {
                    true_len: 15 + 3 * i as u64 + round as u64, // thinking
                    false_len: Some(10),                        // eating
                })
                .collect()
        })
        .collect();
    let procs = phased_system(n, scripts, PeerSelect::Random);
    let cfg = SimConfig {
        seed: 4,
        delay: DelayModel::Fixed(4),
        ..SimConfig::default()
    };
    let run = Simulation::new(cfg, procs).run();
    assert!(
        !run.deadlocked(),
        "scapegoat protocol is deadlock-free under A1/A2"
    );
    let fresh_pred = DisjunctivePredicate::at_least_one(n, "ok");
    assert!(detect_disjunctive_violation(&run.deposet, &fresh_pred).is_none());
    println!(
        "  {} meals eaten, {} control messages, nobody ever saw a full table ✓",
        run.metrics.counter("entries"),
        run.metrics.counter("msgs_ctrl")
    );
}
