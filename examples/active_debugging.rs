//! The paper's Section 7 / Figure 4 walkthrough: a full active-debugging
//! session on a replicated server system.
//!
//! Cycle: observe C1 → detect bug1 → controlled replay (C2) → detect bug2 →
//! control "e before f" (C3) → apply to C1 (C4): bug2 explains bug1 →
//! guard fresh runs with on-line control.
//!
//! Run with: `cargo run --example active_debugging`

use predicate_control::control::online::{phased_system, PeerSelect, Phase};
use predicate_control::deposet::scenarios::replicated_servers;
use predicate_control::deposet::{dot, lattice};
use predicate_control::prelude::*;
use predicate_control::sim::Simulation;

fn main() {
    let fig = replicated_servers();
    let c1 = &fig.deposet;
    let opts = OfflineOptions::default();

    println!("=== Computation C1 (three replicated servers) ===");
    for p in c1.processes() {
        let line: Vec<String> = c1
            .states_of(p)
            .iter()
            .map(|s| {
                let avail = s.vars.get_bool("avail");
                let mark = if avail { "—" } else { "✖" };
                match &s.label {
                    Some(l) => format!("{mark}({l})"),
                    None => mark.to_string(),
                }
            })
            .collect();
        println!("  {p}: {}", line.join(" "));
    }

    // --- Step 1: detect bug1 -------------------------------------------------
    println!("\n[1] Safety property: at least one server available at all times.");
    let bad = detect_disjunctive_violation(c1, &fig.availability).expect("bug1 is possible in C1");
    println!("    bug1 DETECTED: all servers unavailable is possible, e.g. at {bad}");
    let all_bad =
        lattice::find_all_consistent(c1, 100_000, |d, g| !fig.availability.eval(d, g)).unwrap();
    println!(
        "    every violating consistent global state: {}",
        all_bad
            .iter()
            .map(|g| g.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert_eq!(all_bad, vec![fig.g.clone(), fig.h.clone()]);

    // --- Step 2: control C1 → C2 ----------------------------------------------
    let rel_avail =
        control_disjunctive(c1, &fig.availability, opts).expect("availability is feasible");
    println!("\n[2] Off-line control for availability: C = {rel_avail}");
    let c2 = ControlledDeposet::new(c1, rel_avail.clone()).unwrap();
    assert!(!c2.is_consistent(&fig.g) && !c2.is_consistent(&fig.h));
    println!("    G and H are inconsistent in the controlled computation C2.");

    // Actively replay: run C1 again with the control enforced.
    let rp = replay(c1, &rel_avail, &ReplayConfig::default());
    assert!(rp.completed() && rp.fidelity(c1));
    assert!(detect_disjunctive_violation(rp.deposet(), &fig.availability).is_none());
    println!("    controlled replay of C1: bug1 does not recur ✓");

    // --- Step 3: suspect and confirm bug2 -------------------------------------
    println!("\n[3] Suspect bug2: states e and f occur at the same time.");
    println!(
        "    e = {} (server 2 recovers), f = {} (server 0 fails)",
        fig.e, fig.f
    );
    assert!(c2.concurrent(fig.e, fig.f));
    println!("    e ∥ f holds even in C2 — bug2 is still possible.");

    // --- Step 4: control for "e before f" → C3 --------------------------------
    let rel_order =
        control_disjunctive(c1, &fig.order_e_before_f, opts).expect("ordering is feasible");
    println!("\n[4] Off-line control for 'e must happen before f': C = {rel_order}");
    println!("    (the fine-grained event-ordering property, paper example (3))");

    // --- Step 5: apply to C1 → C4: root-cause analysis -------------------------
    let c4 = ControlledDeposet::new(c1, rel_order.clone()).unwrap();
    assert!(!c4.is_consistent(&fig.g) && !c4.is_consistent(&fig.h));
    println!("\n[5] Applying the e-before-f control to the ORIGINAL C1 (→ C4):");
    println!("    G and H become inconsistent — eliminating bug2 also eliminates");
    println!("    bug1, so bug2 is the most important bug.");

    // Render C4 for inspection (space-time diagram with the control edge).
    let dot = dot::to_dot(
        c1,
        &dot::DotOptions {
            extra_edges: rel_order.pairs().to_vec(),
            highlights: vec![fig.e, fig.f],
            show_vars: true,
        },
    );
    println!(
        "\n    (Graphviz of C4 available — {} bytes of DOT)",
        dot.len()
    );

    // --- Step 6: on-line control for fresh runs --------------------------------
    println!("\n[6] Guarding future computations with ON-LINE control:");
    let scripts: Vec<Vec<Phase>> = (0..3)
        .map(|i| {
            (0..4)
                .map(|k| Phase {
                    true_len: 18 + 4 * i as u64 + k as u64,
                    false_len: Some(7),
                })
                .collect()
        })
        .collect();
    let procs = phased_system(3, scripts, PeerSelect::Random);
    let cfg = SimConfig {
        seed: 2,
        delay: DelayModel::Fixed(5),
        ..SimConfig::default()
    };
    let run = Simulation::new(cfg, procs).run();
    assert!(!run.deadlocked());
    let fresh =
        detect_disjunctive_violation(&run.deposet, &DisjunctivePredicate::at_least_one(3, "ok"));
    assert_eq!(fresh, None);
    println!(
        "    fresh run under the scapegoat strategy: {} unavailability windows,",
        run.metrics.counter("entries")
    );
    println!(
        "    {} control messages, no violation on any consistent global state ✓",
        run.metrics.counter("msgs_ctrl")
    );
    println!("\nConfidence increased: bug2 was the problem. Session complete.");
}
