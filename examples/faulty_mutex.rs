//! The hardened anti-token protocol surviving a scripted crash *and* a
//! network partition, with the post-run safety audit.
//!
//! The paper's Figure-3 strategy assumes reliable channels and immortal
//! processes. This example drops both assumptions at once:
//!
//! * 5% uniform message loss on every link,
//! * a partition isolating P1 during `[120, 200)`,
//! * the initial scapegoat P0 crashing at t=25 and restarting at t=375.
//!
//! The run must still complete every critical-section entry, keep
//! `max_concurrent ≤ n−1`, and — audited by `sweep_faulty_run` — never
//! lose the witness for `B = ∨ᵢ ¬csᵢ` on a cut where every process is up.
//!
//! With `--metrics ADDR` the run also serves live Prometheus metrics:
//! the simulation publishes its registry every few dispatched events and a
//! `/metrics` endpoint (plain `std::net::TcpListener`, no dependencies)
//! serves the exposition — `curl http://ADDR/metrics` while it runs.
//! `--serve-ms MS` keeps the endpoint (and process) alive that long after
//! the simulation finishes, since the simulated run completes in
//! milliseconds of wall time.
//!
//! Run with: `cargo run --example faulty_mutex [-- <seed>]
//!   [--metrics 127.0.0.1:9184] [--serve-ms 30000]`

use predicate_control::obs::prom::MetricsServer;
use predicate_control::prelude::*;

struct Opts {
    seed: u64,
    metrics: Option<String>,
    serve_ms: u64,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        seed: 3,
        metrics: None,
        serve_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metrics" => opts.metrics = Some(it.next().expect("--metrics ADDR")),
            "--serve-ms" => {
                opts.serve_ms = it
                    .next()
                    .expect("--serve-ms MS")
                    .parse()
                    .expect("--serve-ms MS must be a number")
            }
            other => {
                opts.seed = other.parse().unwrap_or_else(|_| {
                    panic!(
                        "usage: faulty_mutex [<seed>] [--metrics ADDR] [--serve-ms MS], got {other}"
                    )
                })
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_opts();
    let seed = opts.seed;
    let n = 4usize;
    let cfg = WorkloadConfig {
        processes: n,
        entries_per_process: 6,
        think: (20, 60),
        cs: (5, 15),
        seed,
        delay: 10,
    };
    let plan = FaultPlan::uniform_loss(0.05)
        .with_partition(SimTime(120), SimTime(200), vec![ProcessId(1)])
        .with_crash(ProcessId(0), SimTime(25), Some(350));

    println!("hardened (n-1)-mutex, n = {n}, seed = {seed}");
    println!("faults: 5% loss, P1 partitioned [120,200), P0 crashes @25, restarts @375\n");

    // Optional live-metrics endpoint: the sim publishes its registry into
    // the shared cell; the server renders whatever is current per request.
    let live = LiveMetrics::new();
    let server = opts.metrics.as_deref().map(|addr| {
        let srv = MetricsServer::spawn(addr, live.renderer()).expect("bind metrics endpoint");
        println!(
            "serving live metrics on http://{}/metrics\n",
            srv.local_addr()
        );
        srv
    });
    let live_opt = server.as_ref().map(|_| (live.clone(), 16));

    let r = run_ft_antitoken_with(
        &cfg,
        PeerSelect::NextInRing,
        FtParams::default(),
        plan,
        Box::new(NullRecorder),
        live_opt,
    );

    println!("outcome        : {:?} at t={}", r.stopped, r.end_time.0);
    println!(
        "deadlocked     : {} (protocol deadlock: {}, per-process: {:?})",
        r.deadlocked(),
        r.protocol_deadlock(),
        r.outcomes()
    );
    println!(
        "entries        : {} (quota {})",
        r.metrics.counter("entries"),
        n * 6
    );
    println!(
        "max concurrent : {} (k = {})",
        max_concurrent(&r.metrics, n),
        n - 1
    );
    println!("ctrl messages  : {}", r.metrics.counter("msgs_ctrl"));
    println!("fault counters : {}", r.metrics.fault_line());

    let report = sweep_faulty_run(&r.deposet, &LocalPredicate::not_var("cs"));
    println!("\npost-run safety sweep (B = at least one process outside its CS):");
    println!("  down windows        : {:?}", report.down_windows);
    match &report.unwitnessed_cut {
        Some(cut) => println!("  unwitnessed cut     : {cut} (contains the crashed process)"),
        None => println!("  unwitnessed cut     : none — B witnessed by a live process everywhere"),
    }
    match &report.clean_violation {
        Some(cut) => println!("  CLEAN VIOLATION     : {cut} — protocol bug!"),
        None => println!("  clean violation     : none — every violating cut is crash-explained"),
    }

    assert!(!r.deadlocked(), "the hardened protocol must not deadlock");
    assert_eq!(r.metrics.counter("entries"), (n * 6) as u64);
    assert!(max_concurrent(&r.metrics, n) < n);
    assert!(report.safe_modulo_crashes(), "{report:?}");
    println!("\nall guarantees held: completion under faults, k-mutex, B safe modulo crashes");

    if let Some(srv) = server {
        if opts.serve_ms > 0 {
            println!(
                "keeping http://{}/metrics up for {}ms (final registry published)…",
                srv.local_addr(),
                opts.serve_ms
            );
            std::thread::sleep(std::time::Duration::from_millis(opts.serve_ms));
        }
        srv.shutdown();
    }
}
